package core

import (
	"fmt"
	"math"

	"repro/internal/mpc"
	"repro/internal/rng"
	"repro/internal/setcover"
)

// HGCoverOptions tunes HGSetCover.
type HGCoverOptions struct {
	// Eps is the ε of the ε-greedy rule: selected sets have cost ratio at
	// least 1/(1+ε) of the maximum, giving a (1+ε)·H_∆ approximation.
	// Defaults to 0.2.
	Eps float64
	// Eta overrides the per-machine space target (default m^{1+µ} where m
	// is the ground set size — this is the paper's m ≪ n regime).
	Eta int
	// Preprocess enables the weight clamping of Remark 4.7: with
	// γ = max_j min_{S∋j} w(S) (a lower bound on OPT), every set of weight
	// at most γε/n is added to the cover upfront (total extra cost ≤ ε·OPT)
	// and every set of weight above m·γ is discarded (OPT ≤ m·γ). The
	// surviving weight spread is at most mn/ε, which bounds the number of
	// L-levels independent of the input weights.
	Preprocess bool
}

// HGSetCover is Algorithm 3: the hungry-greedy (1+ε)·H_∆ approximation for
// minimum weight set cover (Theorems 4.5 and 4.6).
//
// The algorithm maintains a cost-ratio level L (initially max |S_ℓ|/w_ℓ) and
// repeatedly exhausts the "bucket" of sets with |S_ℓ \ C|/w_ℓ ≥ L/(1+ε).
// Within an iteration the bucket-eligible sets are bucketed by uncovered
// size into 1/α classes (α = µ/8); from class i the algorithm samples
// ~2·m^{(i+1)α} groups of ~m^{µ/2} sets, and the central machine adds, per
// group, the first set that still has at least m^{1-(i+1)α}/2 uncovered
// elements. Lemma 4.3 shows the potential Φ = Σ_{eligible} |S_ℓ \ C| drops
// by a factor m^{µ/8} per iteration, so each bucket empties in
// O(log Φ / (µ log m)) iterations.
//
// When the bucket empties, L drops. The paper lowers L by exactly (1+ε);
// this implementation jumps L directly to the current maximum ratio (which
// the bucket-emptiness check computes anyway). That skips only empty
// buckets — in which the paper's algorithm would select nothing — so the
// solution is unchanged and the round count is only reduced.
func HGSetCover(inst *setcover.Instance, p Params, opt HGCoverOptions) (*CoverResult, error) {
	n := inst.NumSets()
	m := inst.NumElements
	if m == 0 {
		return &CoverResult{}, nil
	}
	eps := opt.Eps
	if eps <= 0 {
		eps = 0.2
	}
	etaWords := opt.Eta
	if etaWords <= 0 {
		etaWords = eta(m, p.Mu, 8)
	}
	inputWords := inst.TotalSize() + 2*n
	M := dataMachines(inputWords, 4*etaWords)
	cluster := newCluster(M, etaWords, p, capSlack)
	defer cluster.Close()
	tree := mpc.NewTree(cluster, 0, treeDegree(m, p.Mu))
	r := rng.New(p.Seed)
	setOwner := func(i int) int { return 1 + i%(M-1) }

	ownedSets := partitionByOwner(n, M, setOwner)

	// Residents: set owners hold (elements, weight, uncovered count);
	// central holds the covered bitmap and the solution.
	resident := make([]int, M)
	for i, s := range inst.Sets {
		resident[setOwner(i)] += len(s) + 3
	}
	for machine := 1; machine < M; machine++ {
		cluster.SetResident(machine, resident[machine])
	}
	cluster.SetResident(0, m+n)

	covered := make([]bool, m)
	coveredCount := 0
	uncov := make([]int, n)
	for i, s := range inst.Sets {
		uncov[i] = len(s)
	}
	var solution []int
	inSolution := make([]bool, n)
	excluded := make([]bool, n)

	if opt.Preprocess {
		// Remark 4.7. γ is computed with one aggregation up the tree (each
		// machine contributes per-element minima over its sets) and one
		// broadcast down; the simulator charges those rounds.
		gamma, err := remark47Gamma(cluster, tree, inst, ownedSets)
		if err != nil {
			return nil, err
		}
		cheap := gamma * eps / float64(n)
		expensive := float64(m) * gamma
		for i := 0; i < n; i++ {
			switch {
			case inst.Weights[i] <= cheap:
				inSolution[i] = true
				solution = append(solution, i)
				for _, e := range inst.Sets[i] {
					if !covered[e] {
						covered[e] = true
						coveredCount++
					}
				}
			case inst.Weights[i] > expensive:
				excluded[i] = true
			}
		}
		// Refresh the uncovered counts after the upfront selections.
		for i := 0; i < n; i++ {
			cnt := 0
			for _, e := range inst.Sets[i] {
				if !covered[e] {
					cnt++
				}
			}
			uncov[i] = cnt
		}
	}

	alpha := p.Mu / 8
	if alpha <= 0 {
		alpha = 0.0125
	}
	classes := int(math.Ceil(1 / alpha))
	mf := float64(m)
	groupSample := math.Pow(mf, p.Mu/2)

	// maxRatio aggregates the maximum eligible cost ratio to the central
	// machine and back (two rounds, like the f=2 aggregation).
	maxRatio := func() (float64, error) {
		cluster.ArmAll() // every machine reports its best ratio
		err := cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			best := 0.0
			for _, i := range ownedSets[machine] {
				if inSolution[i] || excluded[i] || uncov[i] == 0 {
					continue
				}
				if ratio := float64(uncov[i]) / inst.Weights[i]; ratio > best {
					best = ratio
				}
			}
			out.Begin(0)
			out.Float(best)
			out.End()
		})
		if err != nil {
			return 0, err
		}
		best := 0.0
		err = cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			if machine != 0 {
				return
			}
			for msg, ok := in.Next(); ok; msg, ok = in.Next() {
				if msg.Floats[0] > best {
					best = msg.Floats[0]
				}
			}
			for to := 1; to < M; to++ {
				out.Begin(to)
				out.Float(best)
				out.End()
			}
		})
		if err != nil {
			return 0, err
		}
		return best, nil
	}

	classOf := func(sz int) int {
		if sz <= 0 {
			return -1
		}
		i := int(math.Ceil((1 - math.Log(float64(sz))/math.Log(mf)) / alpha))
		if i < 1 {
			i = 1
		}
		if i > classes {
			i = classes
		}
		return i
	}

	L, err := maxRatio()
	if err != nil {
		return nil, err
	}
	res := &CoverResult{}
	type sampleEntry struct {
		set   int
		elems []int // uncovered elements at sampling time
	}

	for coveredCount < m {
		if res.Iterations >= p.maxIter() {
			return nil, fmt.Errorf("core: HGSetCover exceeded %d iterations", p.maxIter())
		}
		cur, err := maxRatio()
		if err != nil {
			return nil, err
		}
		if cur <= 0 {
			return nil, fmt.Errorf("core: HGSetCover stalled with %d/%d covered", coveredCount, m)
		}
		if cur < L/(1+eps) {
			// Bucket empty: drop L. (Jumping straight to the max ratio
			// skips the empty buckets; see the doc comment.)
			L = cur
		}
		res.Iterations++
		eligible := func(i int) bool {
			return !inSolution[i] && !excluded[i] && uncov[i] > 0 &&
				float64(uncov[i])/inst.Weights[i] >= L/(1+eps)
		}

		// Aggregate class sizes |S_{k,i}| over the tree.
		machineClass := make([][]int64, M)
		for machine := range machineClass {
			machineClass[machine] = make([]int64, classes+1)
		}
		for i := 0; i < n; i++ {
			if eligible(i) {
				machineClass[setOwner(i)][classOf(uncov[i])]++
			}
		}
		classCounts, err := tree.AllReduceSum(cluster, classes+1, func(machine int) []int64 {
			return machineClass[machine]
		})
		if err != nil {
			return nil, err
		}

		// Sampling round: each eligible set joins each of its class's
		// 2·m^{(i+1)α} groups independently with probability
		// min(1, m^{µ/2}/|S_{k,i}|); the set ships its uncovered elements
		// plus its group list to the central machine.
		numGroups := make([]int, classes+1)
		for i := 1; i <= classes; i++ {
			numGroups[i] = int(math.Ceil(2 * math.Pow(mf, float64(i+1)*alpha)))
		}
		groupsByClass := make([][][]sampleEntry, classes+1)
		for i := 1; i <= classes; i++ {
			groupsByClass[i] = make([][]sampleEntry, numGroups[i])
		}
		overflow := false
		// Draw each machine's group memberships before the round (machine
		// order, then set order); the closures replay the per-machine
		// payload plans concurrently.
		plan := make([][][]int64, M)
		for machine := 1; machine < M; machine++ {
			for _, i := range ownedSets[machine] {
				if !eligible(i) {
					continue
				}
				cls := classOf(uncov[i])
				if classCounts[cls] == 0 {
					continue
				}
				prob := math.Min(1, groupSample/float64(classCounts[cls]))
				k := r.Binomial(numGroups[cls], prob)
				if k == 0 {
					continue
				}
				gids := r.SampleWithoutReplacement(numGroups[cls], k)
				elems := make([]int, 0, uncov[i])
				for _, e := range inst.Sets[i] {
					if !covered[e] {
						elems = append(elems, e)
					}
				}
				payload := make([]int64, 0, len(elems)+len(gids)+2)
				payload = append(payload, int64(i), int64(len(gids)))
				for _, gid := range gids {
					payload = append(payload, int64(gid))
				}
				for _, e := range elems {
					payload = append(payload, int64(e))
				}
				plan[machine] = append(plan[machine], payload)
				entry := sampleEntry{set: i, elems: elems}
				for _, gid := range gids {
					groupsByClass[cls][gid] = append(groupsByClass[cls][gid], entry)
				}
			}
		}
		armPlanned(cluster, plan)
		err = cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			for _, payload := range plan[machine] {
				out.Send(0, payload, nil)
			}
		})
		if err != nil {
			return nil, err
		}
		// Claim 4.1 check: any group larger than 4·m^{µ/2} fails this
		// iteration (Lines 15-17: skip to the next iteration).
		maxGroup := int(math.Ceil(4 * groupSample))
		for i := 1; i <= classes && !overflow; i++ {
			for _, grp := range groupsByClass[i] {
				if len(grp) > maxGroup {
					overflow = true
					break
				}
			}
		}
		if overflow {
			continue
		}

		// Central machine (Lines 18-22): per class, per group, add the
		// first set that still has ≥ m^{1-(i+1)α}/2 uncovered elements.
		var deltaC []int64
		for i := 1; i <= classes; i++ {
			threshold := math.Pow(mf, 1-float64(i+1)*alpha) / 2
			for _, grp := range groupsByClass[i] {
				for _, entry := range grp {
					if inSolution[entry.set] {
						continue
					}
					curUncov := 0
					for _, e := range entry.elems {
						if !covered[e] {
							curUncov++
						}
					}
					if float64(curUncov) < threshold {
						continue
					}
					inSolution[entry.set] = true
					solution = append(solution, entry.set)
					for _, e := range entry.elems {
						if !covered[e] {
							covered[e] = true
							coveredCount++
							deltaC = append(deltaC, int64(e))
						}
					}
					break
				}
			}
		}

		// Broadcast ΔC down the tree; owners refresh their uncovered
		// counts.
		if err := tree.Broadcast(cluster, deltaC, nil); err != nil {
			return nil, err
		}
		newlyCovered := make(map[int]bool, len(deltaC))
		for _, e := range deltaC {
			newlyCovered[int(e)] = true
		}
		for i := 0; i < n; i++ {
			if uncov[i] == 0 {
				continue
			}
			for _, e := range inst.Sets[i] {
				if newlyCovered[e] {
					uncov[i]--
				}
			}
		}
	}

	res.Cover = append([]int(nil), solution...)
	res.Weight = inst.Weight(res.Cover)
	res.Metrics = cluster.Metrics()
	return res, nil
}

// remark47Gamma computes γ = max_j min_{S∋j} w(S), the preprocessing pivot
// of Remark 4.7, charging one aggregation and one broadcast. Machines hold
// sets, so each machine first derives per-element minima over its own sets;
// the elementwise minima are combined up the tree (simulated here as a
// direct aggregation of each machine's (element, min) pairs, whose total
// volume is at most the input size).
func remark47Gamma(cluster *mpc.Cluster, tree *mpc.Tree, inst *setcover.Instance, ownedSets [][]int) (float64, error) {
	m := inst.NumElements
	// Per-machine (element, weight) payloads and the resulting elementwise
	// minima are computed up front (elements are shared across machines, so
	// the minima cannot be folded inside the concurrent round); the round
	// ships each machine's payload to the central machine.
	minW := make([]float64, m)
	for j := range minW {
		minW[j] = math.Inf(1)
	}
	ints := make([][]int64, cluster.M())
	floats := make([][]float64, cluster.M())
	for machine := 1; machine < cluster.M(); machine++ {
		for _, i := range ownedSets[machine] {
			for _, e := range inst.Sets[i] {
				ints[machine] = append(ints[machine], int64(e))
				floats[machine] = append(floats[machine], inst.Weights[i])
				if inst.Weights[i] < minW[e] {
					minW[e] = inst.Weights[i]
				}
			}
		}
	}
	armPlanned(cluster, ints)
	err := cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
		if len(ints[machine]) > 0 {
			out.Send(0, ints[machine], floats[machine])
		}
	})
	if err != nil {
		return 0, err
	}
	gamma := 0.0
	for j := 0; j < m; j++ {
		if !math.IsInf(minW[j], 1) && minW[j] > gamma {
			gamma = minW[j]
		}
	}
	// Broadcast γ so machines can apply the clamps locally.
	if err := tree.Broadcast(cluster, nil, []float64{gamma}); err != nil {
		return 0, err
	}
	return gamma, nil
}
