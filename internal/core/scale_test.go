package core

// Larger-scale validation runs (skipped with -short): the theorems'
// asymptotics only become visible at scale, so these exercise the paper's
// intended regime — tens of thousands of vertices, hundreds of thousands of
// edges, and a cluster of dozens of machines — and assert that the space
// caps still hold and the iteration counts stay in the predicted bands.

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/setcover"
)

func TestScaleMatching(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	r := rng.New(150)
	n, c, mu := 10000, 0.3, 0.15
	g := graph.Density(n, c, r)
	g.AssignUniformWeights(r, 1, 1000)
	res, err := RLRMatching(g, Params{Mu: mu, Seed: 1}, MatchingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMatching(g, res.Edges) {
		t.Fatal("invalid matching at scale")
	}
	if res.Metrics.Violations != 0 {
		t.Fatalf("space violations at scale: %d", res.Metrics.Violations)
	}
	// Theorem 5.5: O(c/µ) iterations; generous constant 10.
	if float64(res.Iterations) > 10*c/mu {
		t.Fatalf("iterations %d far above c/µ band", res.Iterations)
	}
	if res.Metrics.Machines < 4 {
		t.Fatalf("scale test should need a real cluster, got %d machines", res.Metrics.Machines)
	}
}

func TestScaleVertexCover(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	r := rng.New(151)
	n, c, mu := 10000, 0.3, 0.15
	g := graph.Density(n, c, r)
	w := make([]float64, g.N)
	for i := range w {
		w[i] = r.UniformWeight(1, 100)
	}
	inst := setcover.FromVertexCover(g, w)
	res, err := RLRSetCover(inst, Params{Mu: mu, Seed: 2}, CoverOptions{VertexCoverMode: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight > 2*res.LowerBound+1e-6 {
		t.Fatal("2-approximation violated at scale")
	}
	if res.Metrics.Violations != 0 {
		t.Fatalf("space violations: %d", res.Metrics.Violations)
	}
	if float64(res.Iterations) > 10*c/mu {
		t.Fatalf("iterations %d above band", res.Iterations)
	}
}

func TestScaleMIS(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	r := rng.New(152)
	g := graph.Density(8000, 0.3, r)
	res, err := MISFast(g, Params{Mu: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMaximalIndependentSet(g, res.Set) {
		t.Fatal("invalid MIS at scale")
	}
	if res.Metrics.Violations != 0 {
		t.Fatalf("space violations: %d", res.Metrics.Violations)
	}
}

func TestScaleColouring(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	r := rng.New(153)
	n, mu := 8000, 0.2
	g := graph.Density(n, 0.35, r)
	res, err := VertexColouring(g, Params{Mu: mu, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsProperVertexColouring(g, res.Colours) {
		t.Fatal("improper at scale")
	}
	delta := float64(g.MaxDegree())
	slack := 1 + math.Sqrt(6*math.Log(float64(n)))/math.Pow(float64(n), mu/2) + math.Pow(float64(n), -mu)
	if float64(res.NumColours) > slack*delta+float64(res.Groups) {
		t.Fatalf("%d colours above (1+o(1))∆ at scale", res.NumColours)
	}
	if res.Metrics.Rounds > 4 {
		t.Fatalf("colouring used %d rounds at scale, want O(1)", res.Metrics.Rounds)
	}
}

func TestScaleHGSetCover(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	r := rng.New(154)
	inst := setcover.RandomSized(20000, 600, 20, 10, r)
	res, err := HGSetCover(inst, Params{Mu: 0.3, Seed: 5}, HGCoverOptions{Eps: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCover(res.Cover) {
		t.Fatal("invalid cover at scale")
	}
	if res.Metrics.Violations != 0 {
		t.Fatalf("space violations: %d", res.Metrics.Violations)
	}
}
