package core

// Sharded-execution equivalence: the repo's determinism contract extends
// across process topologies. Every registered algorithm — graph, vertex
// cover, and set cover inputs alike — must produce bit-identical summaries
// and full mpc.Metrics whether its clusters run unsharded, partitioned
// across K in-memory shards, or partitioned across K TCP-loopback shards
// (real sockets, framing, and checksums in one process). The test runs
// under -race in CI, so it also exercises the transport goroutines against
// the parallel executor.

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/rng"
	"repro/internal/setcover"
)

func TestShardedEquivalence(t *testing.T) {
	r := rng.New(4242)
	g := graph.Density(220, 0.4, r)
	g.AssignUniformWeights(r, 1, 20)
	cover := setcover.RandomFrequency(24, 160, 3, 5, rng.New(7))

	vcWeights := func(g *graph.Graph) []float64 {
		w := make([]float64, g.N)
		wr := rng.New(11)
		for i := range w {
			w[i] = wr.UniformWeight(1, 10)
		}
		return w
	}
	input := func(kind InputKind) Input {
		switch kind {
		case InputSetCover:
			return Input{Cover: cover}
		case InputVertexCover:
			return Input{Graph: g, Cover: setcover.FromVertexCover(g, vcWeights(g))}
		default:
			return Input{Graph: g}
		}
	}

	variants := []struct {
		name      string
		shards    int
		transport mpc.TransportFactory
	}{
		{"mem-k2", 2, nil},
		{"mem-k4", 4, nil},
		{"tcp-k2", 2, mpc.TCPLoopback(mpc.TCPOptions{})},
		{"tcp-k4", 4, mpc.TCPLoopback(mpc.TCPOptions{})},
	}

	ran := 0
	for _, alg := range Algorithms() {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			base := Params{Mu: 0.3, Seed: 99, Workers: 2}
			want, err := alg.Run(input(alg.Input), base, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range variants {
				p := base
				p.Shards = v.shards
				p.Transport = v.transport
				got, err := alg.Run(input(alg.Input), p, nil)
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				if got.Summary != want.Summary {
					t.Errorf("%s: summary differs:\n  1-process: %s\n  sharded:   %s", v.name, want.Summary, got.Summary)
				}
				if got.Metrics != want.Metrics {
					t.Errorf("%s: metrics differ:\n  1-process: %+v\n  sharded:   %+v", v.name, want.Metrics, got.Metrics)
				}
				if got.Size != want.Size || got.Weight != want.Weight ||
					got.Valid != want.Valid || got.Iterations != want.Iterations {
					t.Errorf("%s: scalars differ: 1-process %+v, sharded %+v", v.name, want, got)
				}
			}
		})
		ran++
	}
	if ran < 10 {
		t.Fatalf("only %d algorithms exercised; registry shrank?", ran)
	}
}

// TestShardedParamsThread checks the Params plumbing end to end: a sharded
// run actually builds sharded clusters (visible through transport activity
// when a TCP factory is installed).
func TestShardedParamsThread(t *testing.T) {
	r := rng.New(3)
	g := graph.Density(120, 0.3, r)
	g.AssignUniformWeights(r, 1, 5)
	alg, ok := LookupAlgorithm("matching")
	if !ok {
		t.Fatal("matching not registered")
	}
	before, _ := mpc.TransportTotals()
	if _, err := alg.Run(Input{Graph: g}, Params{Mu: 0.2, Seed: 5, Shards: 2}, nil); err != nil {
		t.Fatal(err)
	}
	after, _ := mpc.TransportTotals()
	if after <= before {
		t.Fatalf("sharded run moved no transport batches (before %d, after %d)", before, after)
	}
}

// TestShardedStrictStillFails: strict space-cap failures propagate
// unchanged through the sharded path.
func TestShardedStrictStillFails(t *testing.T) {
	r := rng.New(9)
	g := graph.Density(200, 0.5, r)
	g.AssignUniformWeights(r, 1, 5)
	alg, ok := LookupAlgorithm("matching")
	if !ok {
		t.Fatal("matching not registered")
	}
	p := Params{Mu: 0.0, Seed: 1, Strict: true}
	_, errPlain := alg.Run(Input{Graph: g}, p, nil)
	p.Shards = 3
	_, errShard := alg.Run(Input{Graph: g}, p, nil)
	if (errPlain == nil) != (errShard == nil) {
		t.Fatalf("strict behaviour diverged: unsharded err=%v, sharded err=%v", errPlain, errShard)
	}
	if errPlain != nil && errShard != nil && errPlain.Error() != errShard.Error() {
		t.Fatalf("strict errors diverged: unsharded %q, sharded %q", errPlain, errShard)
	}
}
