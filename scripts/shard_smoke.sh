#!/usr/bin/env bash
# Multi-process determinism smoke test, run by CI and runnable locally from
# the repo root. Builds mrshard, runs the smoke job unsharded and as a
# 2-worker TCP-loopback fleet (real processes, real sockets, framed and
# checksummed columns), and requires the result documents byte-identical —
# to each other and to the committed mrserve expectation.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)/mrshard
go build -o "$BIN" ./cmd/mrshard

"$BIN" -shards 1 -job scripts/smoke_job.json > /tmp/shard_smoke_1.json
"$BIN" -shards 2 -job scripts/smoke_job.json > /tmp/shard_smoke_2.json
cmp /tmp/shard_smoke_1.json /tmp/shard_smoke_2.json
echo "2-process fleet byte-identical to single process"

# The fleet's result must also equal the payload mrserve serves for the
# same request (scripts/smoke_expect.json) — one determinism contract
# across every deployment shape.
python3 - <<'EOF'
import json
got = json.load(open("/tmp/shard_smoke_2.json"))
want = json.load(open("scripts/smoke_expect.json"))
assert got == want, (
    "sharded result drifted from scripts/smoke_expect.json\n"
    f"got:  {json.dumps(got, sort_keys=True)}\n"
    f"want: {json.dumps(want, sort_keys=True)}")
print("fleet result identical to committed serving expectation")
print(got["summary"])
EOF
