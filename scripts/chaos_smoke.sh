#!/usr/bin/env bash
# Crash-recovery smoke test, run by CI and runnable locally from the repo
# root. Builds mrshard, starts the smoke job as a 2-worker TCP fleet with a
# chaos delay schedule stretching the run, kill -9s one worker mid-job, and
# requires (a) the supervisor to detect the death and respawn the worker,
# and (b) the recovered result byte-identical to the clean single-process
# run and to the committed mrserve expectation — deterministic replay
# recovery proven through real processes and real sockets.
set -euo pipefail
cd "$(dirname "$0")/.."

DIR=$(mktemp -d)
BIN="$DIR/mrshard"
go build -o "$BIN" ./cmd/mrshard

"$BIN" -shards 1 -job scripts/smoke_job.json > "$DIR/clean.json"

# The per-operation delay stretches the 8-round job to a few seconds so the
# kill below reliably lands mid-run; delays don't alter results.
"$BIN" -shards 2 -job scripts/smoke_job.json \
    -chaos-delay-every 1 -chaos-delay 150ms \
    > "$DIR/chaos.json" 2> "$DIR/chaos.log" &
SUP=$!

# Wait for worker 1 to exist, let it get into the round loop, then kill -9.
for _ in $(seq 1 100); do
    if pgrep -f "$BIN -worker -shard 1 " > /dev/null; then break; fi
    sleep 0.1
done
sleep 1
pkill -9 -f "$BIN -worker -shard 1 " || {
    echo "chaos_smoke: worker 1 never appeared" >&2
    cat "$DIR/chaos.log" >&2
    exit 1
}

if ! wait "$SUP"; then
    echo "chaos_smoke: supervisor failed after worker kill" >&2
    cat "$DIR/chaos.log" >&2
    exit 1
fi
grep -q "respawning" "$DIR/chaos.log" || {
    echo "chaos_smoke: worker was killed but the supervisor never respawned it" >&2
    cat "$DIR/chaos.log" >&2
    exit 1
}
echo "worker killed and respawned: $(grep -m1 respawning "$DIR/chaos.log")"

cmp "$DIR/chaos.json" "$DIR/clean.json"
echo "recovered fleet result byte-identical to the clean run"

DIR="$DIR" python3 - <<'EOF'
import json, os
d = os.environ["DIR"]
got = json.load(open(d + "/chaos.json"))
want = json.load(open("scripts/smoke_expect.json"))
assert got == want, (
    "recovered result drifted from scripts/smoke_expect.json\n"
    f"got:  {json.dumps(got, sort_keys=True)}\n"
    f"want: {json.dumps(want, sort_keys=True)}")
print("recovered result identical to committed serving expectation")
print(got["summary"])
EOF
