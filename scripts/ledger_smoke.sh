#!/usr/bin/env bash
# Crash-durability smoke test for the mrserve job ledger, run by CI and
# runnable locally from the repo root. Builds mrserve, runs a small
# workload against a ledger directory with a tiny segment budget (to force
# rotation), kill -9s the daemon, appends a simulated torn tail record to
# the active ledger file, restarts on the same directories, and requires:
# the chain verifies (torn tail truncated exactly once), every pre-crash
# result is served byte-identically from the ledger without a single
# flight execution, the offline auditor (cmd/mrverify) re-executes the
# ledgered jobs and reproduces every chained hash — and, after one record
# byte is flipped with dd, verification fails pinpointing the damaged
# file.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:18090
WORK=$(mktemp -d)
BIN=$WORK/mrserve
LEDGER=$WORK/ledger
trap 'kill -9 "${SRV:-0}" 2>/dev/null || true' EXIT

go build -o "$BIN" ./cmd/mrserve

start_server() {
  "$BIN" -addr "$ADDR" -pool 2 -ledger "$LEDGER" -ledger-segment-bytes 256 &
  SRV=$!
  for _ in $(seq 100); do
    curl -sf "$ADDR/v1/algorithms" >/dev/null 2>&1 && return
    sleep 0.1
  done
  echo "server did not come up"; exit 1
}

submit() { # submit <file-to-save-result> <job-json>
  curl -sf -X POST "$ADDR/v1/jobs" -d "$2" >"$1"
  python3 -c 'import json,sys; j=json.load(open(sys.argv[1])); assert j["status"]=="done", j' "$1"
}

JOBS=(
  '{"instance":{"type":"density","n":150,"c":0.3,"seed":7},"alg":"matching","seed":7,"wait":true}'
  '{"instance":{"type":"density","n":120,"c":0.3,"seed":4},"alg":"mis","seed":4,"wait":true}'
  '{"instance":{"type":"vertexcover","n":100,"c":0.3,"seed":3},"alg":"vertexcover","seed":3,"wait":true}'
)
N=${#JOBS[@]}

start_server
for i in $(seq 0 $((N - 1))); do
  submit "$WORK/before_$i.json" "${JOBS[$i]}"
done
echo "ran $N jobs"

# Wait until every record is confirmed durable, then pull the plug.
for _ in $(seq 100); do
  PERSISTED=$(curl -sf "$ADDR/v1/ledger" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["persisted"])')
  [ "$PERSISTED" = "$N" ] && break
  sleep 0.1
done
[ "$PERSISTED" = "$N" ] || { echo "records never became durable ($PERSISTED/$N)"; exit 1; }
kill -9 "$SRV"
wait "$SRV" 2>/dev/null || true
echo "killed -9 with $N durable records"

# Simulate the torn write the kill could have left: a frame header claiming
# 200 body bytes with only 40 present at end-of-file.
python3 - "$LEDGER/ledger.active" <<'EOF'
import struct, sys
with open(sys.argv[1], "ab") as f:
    f.write(struct.pack("<II", 0xDEADBEEF, 200) + b"\xab" * 40)
EOF

start_server
curl -sf "$ADDR/v1/ledger" >"$WORK/head.json"
python3 - "$WORK/head.json" "$N" <<'EOF'
import json, sys
head, n = json.load(open(sys.argv[1])), int(sys.argv[2])
assert head["enabled"], head
assert head["seq"] == n, f"recovered seq {head['seq']}, want {n}"
assert head["torn_tails"] == 1, f"torn tails {head['torn_tails']}, want 1"
assert not head["degraded"], "ledger degraded after clean recovery"
print(f"recovered: seq {head['seq']}, torn tail truncated, head {head['link'][:16]}…")
EOF

# The whole chain re-verifies from disk.
CODE=$(curl -s -o "$WORK/verify.json" -w '%{http_code}' -X POST "$ADDR/v1/ledger/verify")
[ "$CODE" = 200 ] || { echo "verify returned $CODE"; cat "$WORK/verify.json"; exit 1; }
python3 -c 'import json,sys; r=json.load(open(sys.argv[1])); assert r["ok"], r' "$WORK/verify.json"
echo "post-crash chain verification ok"

# Every pre-crash job is answered from the ledger, byte-identical, with no
# re-execution.
for i in $(seq 0 $((N - 1))); do
  submit "$WORK/after_$i.json" "${JOBS[$i]}"
  python3 - "$WORK/before_$i.json" "$WORK/after_$i.json" <<'EOF'
import json, sys
before, after = (json.load(open(p)) for p in sys.argv[1:3])
assert after["source"] == "ledger", f"source {after['source']}, want ledger"
assert json.dumps(after["result"], sort_keys=True) == json.dumps(before["result"], sort_keys=True), \
    "result differs across kill -9"
EOF
done
echo "all $N pre-crash results served from the ledger, byte-identical"

curl -sf "$ADDR/metrics" >"$WORK/metrics.txt"
for line in \
  "mrserve_flights_executed_total 0" \
  "mrserve_ledger_records $N" \
  "mrserve_ledger_hits_total $N" \
  "mrserve_ledger_torn_tail_total 1" \
  "mrserve_ledger_degraded 0"; do
  grep -q "^$line$" "$WORK/metrics.txt" ||
    { echo "metrics missing \"$line\""; cat "$WORK/metrics.txt"; exit 1; }
done
echo "metrics ok (nothing re-executed)"

# The offline auditor re-executes every ledgered job (read-only, against
# the live server's directory) and reproduces every chained hash.
go run ./cmd/mrverify -ledger "$LEDGER" || { echo "mrverify failed a clean chain"; exit 1; }
echo "offline audit ok"

# Flip one byte of a persisted record and require verification to fail
# naming the damaged file. The tiny segment budget sealed earlier records
# into numbered segments; damage the first one.
VICTIM=$(ls "$LEDGER"/seg-*.log 2>/dev/null | head -1 || true)
[ -n "$VICTIM" ] || VICTIM=$LEDGER/ledger.active
printf '\xff' | dd of="$VICTIM" bs=1 seek=100 conv=notrunc status=none
CODE=$(curl -s -o "$WORK/corrupt.json" -w '%{http_code}' -X POST "$ADDR/v1/ledger/verify")
[ "$CODE" = 500 ] || { echo "verify of corrupt chain returned $CODE, want 500"; exit 1; }
python3 - "$WORK/corrupt.json" "$(basename "$VICTIM")" <<'EOF'
import json, sys
rep, victim = json.load(open(sys.argv[1])), sys.argv[2]
assert not rep["ok"], rep
assert victim in rep.get("error", ""), \
    f"verification did not pinpoint {victim}: {rep.get('error')!r}"
print(f"corruption pinpointed: {rep['error']}")
EOF

# And the offline auditor must refuse the damaged chain too.
if go run ./cmd/mrverify -ledger "$LEDGER" >/dev/null 2>&1; then
  echo "mrverify passed a corrupted chain"; exit 1
fi
echo "corruption detected by both online verify and offline audit"

kill -9 "$SRV" 2>/dev/null || true
echo "ledger smoke ok"
