#!/usr/bin/env bash
# End-to-end smoke test for the mrserve daemon, run by CI and runnable
# locally from the repo root. Builds mrserve, starts it, submits the job in
# scripts/smoke_job.json over HTTP, polls it to completion, and diffs the
# deterministic result payload against the committed expectation
# scripts/smoke_expect.json — the serving determinism contract, checked
# through the real binary and real HTTP. Also exercises the observability
# surface: the per-job round trace route, the pprof debug listener, and
# mrrun's Perfetto trace export. The server runs with a durable job ledger
# so its metric lines are asserted on the happy path here (the crash path
# is scripts/ledger_smoke.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:18080
DEBUG_ADDR=127.0.0.1:18081
WORK=$(mktemp -d)
BIN=$WORK/mrserve

go build -o "$BIN" ./cmd/mrserve
"$BIN" -addr "$ADDR" -debug-addr "$DEBUG_ADDR" -pool 2 -ledger "$WORK/ledger" &
SRV=$!
trap 'kill "$SRV" 2>/dev/null || true' EXIT

for _ in $(seq 100); do
  curl -sf "$ADDR/v1/algorithms" >/dev/null 2>&1 && break
  sleep 0.1
done

JOB=$(curl -sf -X POST "$ADDR/v1/jobs" --data-binary @scripts/smoke_job.json |
  python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
echo "submitted $JOB"

for _ in $(seq 300); do
  STATUS=$(curl -sf "$ADDR/v1/jobs/$JOB" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["status"])')
  [ "$STATUS" = done ] || [ "$STATUS" = failed ] && break
  sleep 0.1
done
echo "status $STATUS"

curl -sf "$ADDR/v1/jobs/$JOB" >/tmp/smoke_job_done.json
python3 - /tmp/smoke_job_done.json <<'EOF'
import json, sys
job = json.load(open(sys.argv[1]))
assert job["status"] == "done", f"job did not complete: {job}"
got = job["result"]
want = json.load(open("scripts/smoke_expect.json"))
assert got == want, (
    "served result drifted from scripts/smoke_expect.json\n"
    f"got:  {json.dumps(got, sort_keys=True)}\n"
    f"want: {json.dumps(want, sort_keys=True)}")
print("result identical to committed expectation")
print(got["summary"])
EOF

# The same request again must be answered from the result cache with the
# identical payload.
curl -sf -X POST "$ADDR/v1/jobs" --data-binary @scripts/smoke_job.json >/tmp/smoke_job_cached.json
python3 - /tmp/smoke_job_cached.json <<'EOF'
import json, sys
job = json.load(open(sys.argv[1]))
# Without "wait" the submit returns 202 immediately — but a cache hit
# completes synchronously.
assert job["status"] == "done" and job["source"] == "cache", job
want = json.load(open("scripts/smoke_expect.json"))
assert job["result"] == want, "cached result differs from cold result"
print("cache hit identical")
EOF

# The per-job trace route must report one wall-clock span per executed
# round, numbered consecutively — timing observability riding beside (never
# inside) the deterministic result document.
curl -sf "$ADDR/v1/jobs/$JOB/trace" >/tmp/smoke_trace.json
python3 - /tmp/smoke_trace.json /tmp/smoke_job_done.json <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
job = json.load(open(sys.argv[2]))
rounds = trace["rounds"]
want = job["result"]["metrics"]["Rounds"]
assert len(rounds) == want, f"trace has {len(rounds)} spans, metrics say {want} rounds"
assert [r["round"] for r in rounds] == list(range(1, want + 1)), "rounds not consecutive"
assert all(r["wall_clock_us"] >= 0 for r in rounds), "negative wall clock"
print(f"trace route ok ({len(rounds)} round spans)")
EOF

# The debug listener serves pprof on its own address, never on the API one.
curl -sf "$DEBUG_ADDR/debug/pprof/" >/dev/null ||
  { echo "pprof index not served on -debug-addr"; exit 1; }
curl -s -o /dev/null -w '%{http_code}' "$ADDR/debug/pprof/" | grep -q 404 ||
  { echo "pprof leaked onto the API address"; exit 1; }
echo "pprof ok (debug listener only)"

curl -sf "$ADDR/metrics" >/tmp/smoke_metrics.txt
grep -q "mrserve_jobs_completed_total 2" /tmp/smoke_metrics.txt ||
  { echo "metrics missing completed=2"; cat /tmp/smoke_metrics.txt; exit 1; }
# The fault-tolerance counters must be exported (and all zero on this
# clean, unsharded run — no retries, no respawns, no chaos, no fallback).
for line in \
  "mrserve_fallback_unsharded_total 0" \
  "mrserve_jobs_abandoned_total 0" \
  "mrserve_transport_retries_total 0" \
  "mrserve_transport_reconnects_total 0" \
  "mrserve_worker_respawns_total 0" \
  "mrserve_chaos_faults_total 0"; do
  grep -q "^$line$" /tmp/smoke_metrics.txt ||
    { echo "metrics missing \"$line\""; cat /tmp/smoke_metrics.txt; exit 1; }
done
# The durable ledger chained the one executed flight (the cache hit is
# served from the LRU, not appended again), cleanly: no torn tail, no
# degradation, no ledger-served jobs on this cold run.
for line in \
  "mrserve_ledger_records 1" \
  "mrserve_ledger_appends_total 1" \
  "mrserve_ledger_hits_total 0" \
  "mrserve_ledger_torn_tail_total 0" \
  "mrserve_ledger_degraded 0"; do
  grep -q "^$line$" /tmp/smoke_metrics.txt ||
    { echo "metrics missing \"$line\""; cat /tmp/smoke_metrics.txt; exit 1; }
done
echo "metrics ok (recovery and ledger counters exported)"

kill -INT "$SRV"
wait "$SRV" || true
echo "graceful shutdown ok"

# mrrun's -trace-out must leave a strict-JSON Chrome trace file that
# Perfetto can load, containing per-round events.
TRACE=$(mktemp -d)/trace.json
go run ./cmd/mrrun -alg mis -n 500 -seed 7 -trace-out "$TRACE" >/dev/null
python3 -m json.tool "$TRACE" >/dev/null ||
  { echo "mrrun -trace-out wrote invalid JSON"; exit 1; }
python3 - "$TRACE" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
rounds = [e for e in events if e.get("cat") == "round"]
assert rounds, "trace has no round events"
print(f"mrrun trace ok ({len(rounds)} round events)")
EOF
