// Command mrserve is the job-serving daemon: a long-lived HTTP service
// that caches built problem instances and runs MapReduce algorithm jobs
// concurrently on a bounded worker pool, with single-flight batching of
// identical requests and an LRU result cache (internal/service).
//
// Usage:
//
//	mrserve [-addr :8080] [-pool P] [-workers W] [-results R] [-instances I]
//	        [-data DIR] [-ledger DIR] [-preload FILE ...] [-debug-addr :6060]
//	        [-log-level info] [-trace-rounds N]
//
// With -debug-addr, a second listener serves net/http/pprof under
// /debug/pprof/ — kept off the public API address so profiling endpoints
// are never exposed where jobs are. -log-level selects the threshold for
// structured job lifecycle logs on stderr (debug, info, warn, error, or
// off); every event carries the job id and algorithm. -trace-rounds sizes
// the per-job wall-clock round trace served by GET /v1/jobs/{id}/trace
// (0 = default 256, negative disables).
//
// With -data, uploaded and preloaded graphs are spooled to DIR as
// content-addressed binary containers (<id>.mrg) and served zero-copy
// through a read-only mmap — one physical mapping shared by every
// concurrent job on the instance, and instances evicted from the cache
// resurrect from the spool. -preload (repeatable) registers graph files
// from local disk at start-up under the same content id an upload of the
// bytes would get; raw .mrg containers open in O(header) time.
//
// With -ledger, every completed job is appended to a durable Merkle-
// chained ledger in DIR and a restarted daemon serves pre-crash results
// bit-identically without re-executing them. Recovery repairs a torn tail
// record (kill -9 mid-write) by truncating it exactly once; any other
// damage degrades the ledger to memory-only operation (the daemon keeps
// serving) and is pinpointed by POST /v1/ledger/verify. Pair -ledger with
// -data so jobs on uploaded graphs stay replayable across restarts; audit
// the chain offline with cmd/mrverify.
//
// API:
//
//	POST /v1/jobs            {"instance": {...}, "alg": "...", "seed": N, "wait": true}
//	GET  /v1/jobs/{id}       poll a submitted job
//	GET  /v1/jobs/{id}/trace the job's wall-clock round trace (phase timings)
//	GET  /v1/instances   list cached instances
//	POST /v1/instances   upload a graph (text, binary container, or gzip of either)
//	GET  /v1/algorithms  the algorithm registry and parameter schemas
//	GET  /v1/ledger      ledger head and stats (chain link, persisted seq)
//	POST /v1/ledger/verify  re-verify every checksum and chain link
//	GET  /metrics        plain-text counters and job-latency histogram
//
// Jobs are deterministic: the same (instance spec, alg, args, µ, seed)
// returns bit-identical solution summaries and model metrics whether
// served cold, batched with concurrent identical requests, or from cache —
// and identical to cmd/mrrun run with the same spec and seed.
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains in-flight
// jobs, and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/mpc"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pool := flag.Int("pool", 0, "concurrent jobs (0 = GOMAXPROCS)")
	workers := flag.Int("workers", 1, "per-job round-executor pool size: 0|1 sequential, >1 that many goroutines, -1 one per CPU")
	shards := flag.Int("shards", 0, "partition each job's clusters across this many in-process shards (0|1 unsharded; results are bit-identical)")
	transport := flag.String("transport", "mem", "sharded transport: mem (in-memory) or tcp (loopback TCP mesh in-process)")
	barrierTimeout := flag.Duration("barrier-timeout", 2*time.Minute, "tcp transport: per-round barrier/receive deadline")
	dialTimeout := flag.Duration("dial-timeout", 10*time.Second, "tcp transport: per-attempt connect deadline")
	dialRetries := flag.Int("dial-retries", 3, "tcp transport: extra dial attempts after the first, with exponential backoff")
	noFallback := flag.Bool("no-fallback", false, "fail sharded jobs on transport errors instead of degrading to unsharded in-process execution")
	results := flag.Int("results", 256, "LRU result-store capacity")
	instances := flag.Int("instances", 64, "instance-cache capacity")
	dataDir := flag.String("data", "", "directory for spooled binary containers; uploads are served zero-copy from mmap")
	ledgerDir := flag.String("ledger", "", "directory for the durable job ledger (empty disables); completed jobs survive restarts and are served without re-execution")
	ledgerSegBytes := flag.Int64("ledger-segment-bytes", 0, "ledger segment rotation threshold in bytes (0 = 8 MiB default)")
	debugAddr := flag.String("debug-addr", "", "extra listen address for net/http/pprof profiling endpoints (empty disables)")
	logLevel := flag.String("log-level", "info", "structured log threshold: debug, info, warn, error, or off")
	traceRounds := flag.Int("trace-rounds", 0, "per-job round-trace retention for GET /v1/jobs/{id}/trace (0 = default 256, negative disables)")
	var preload stringList
	flag.Var(&preload, "preload", "graph file to register as an uploaded instance at start-up (repeatable; any format)")
	flag.Parse()

	logger := log.New(os.Stderr, "mrserve: ", log.LstdFlags)
	if *transport != "" && *transport != "mem" && *transport != "tcp" {
		logger.Fatalf("-transport must be mem or tcp, got %q", *transport)
	}
	slogger, err := buildLogger(*logLevel)
	if err != nil {
		logger.Fatal(err)
	}
	engine := service.NewEngine(service.Config{
		Pool:      *pool,
		Workers:   *workers,
		Shards:    *shards,
		Transport: *transport,
		TransportOpts: mpc.TransportOpts{
			BarrierTimeout: *barrierTimeout,
			DialTimeout:    *dialTimeout,
			DialRetries:    *dialRetries,
		},
		NoFallback:         *noFallback,
		Results:            *results,
		Instances:          *instances,
		DataDir:            *dataDir,
		LedgerDir:          *ledgerDir,
		LedgerSegmentBytes: *ledgerSegBytes,
		TraceRounds:        *traceRounds,
		Logger:             slogger,
	})
	for _, path := range preload {
		id, info, err := engine.PreloadFile(path)
		if err != nil {
			logger.Fatalf("preload %s: %v", path, err)
		}
		logger.Printf("preloaded %s: id=%s n=%d m=%d mapped=%v", path, id, info.N, info.M, info.Mapped)
	}
	server := &http.Server{Addr: *addr, Handler: service.NewServer(engine)}

	if *debugAddr != "" {
		// Profiling endpoints get their own mux and listener so they never
		// leak onto the public API address.
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Printf("pprof listening on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				logger.Printf("pprof server: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (pool=%d workers=%d shards=%d)", *addr, *pool, *workers, *shards)
		errc <- server.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Fatal(err)
		}
	case <-ctx.Done():
		logger.Print("shutting down: draining in-flight jobs")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			logger.Printf("http shutdown: %v", err)
		}
		engine.Close()
		logger.Print("bye")
	}
}

// buildLogger maps -log-level onto a text slog.Logger on stderr; "off"
// returns nil (the engine substitutes its nop logger).
func buildLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "off":
		return nil, nil
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level must be debug, info, warn, error or off, got %q", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

// stringList is a repeatable string flag.
type stringList []string

func (s *stringList) String() string { return fmt.Sprint([]string(*s)) }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}
