// Command mrrun runs a single MapReduce algorithm on a generated instance
// and prints the solution summary plus the measured model costs (rounds,
// words, space per machine).
//
// Usage:
//
//	mrrun -alg matching -n 1000 -c 0.3 -mu 0.2 [-seed 1] [-b 3] [-eps 0.2] [-workers W]
//
// Algorithms: matching, bmatching, vertexcover, setcover-f, setcover-greedy,
// mis, mis-simple, luby, clique, filtering, vcolour, ecolour.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/rng"
	"repro/internal/setcover"
)

func main() {
	alg := flag.String("alg", "matching", "algorithm to run")
	n := flag.Int("n", 1000, "number of vertices / sets")
	c := flag.Float64("c", 0.3, "density exponent: m = n^{1+c}")
	mu := flag.Float64("mu", 0.2, "space exponent: machines have ~n^{1+mu} words")
	seed := flag.Uint64("seed", 1, "random seed")
	bcap := flag.Int("b", 2, "b-matching capacity")
	eps := flag.Float64("eps", 0.2, "epsilon (b-matching, greedy set cover)")
	f := flag.Int("f", 3, "set cover max frequency (setcover-f)")
	load := flag.String("load", "", "load the graph from a file (format of internal/graph.Encode) instead of generating one")
	save := flag.String("save", "", "save the generated graph to a file before running")
	workers := flag.Int("workers", 0, "round-executor pool size: 0|1 sequential, >1 that many goroutines, -1 one per CPU")
	flag.Parse()

	r := rng.New(*seed)
	p := core.Params{Mu: *mu, Seed: r.Uint64(), Workers: *workers}

	newGraph := func() *graph.Graph {
		if *load != "" {
			fh, err := os.Open(*load)
			exitOn(err)
			defer fh.Close()
			g, err := graph.Decode(fh)
			exitOn(err)
			return g
		}
		g := graph.Density(*n, *c, r.Split())
		g.AssignUniformWeights(r.Split(), 1, 100)
		if *save != "" {
			fh, err := os.Create(*save)
			exitOn(err)
			exitOn(graph.Encode(fh, g))
			exitOn(fh.Close())
		}
		return g
	}

	var metrics mpc.Metrics
	switch *alg {
	case "matching":
		g := newGraph()
		res, err := core.RLRMatching(g, p, core.MatchingOptions{})
		exitOn(err)
		fmt.Printf("matching: %d edges, weight %.2f, valid=%v, iters=%d\n",
			len(res.Edges), res.Weight, graph.IsMatching(g, res.Edges), res.Iterations)
		metrics = res.Metrics
	case "bmatching":
		g := newGraph()
		bf := func(int) int { return *bcap }
		res, err := core.BMatching(g, p, core.BMatchingOptions{B: bf, Eps: *eps})
		exitOn(err)
		fmt.Printf("b-matching (b=%d): %d edges, weight %.2f, valid=%v, iters=%d\n",
			*bcap, len(res.Edges), res.Weight, graph.IsBMatching(g, res.Edges, bf), res.Iterations)
		metrics = res.Metrics
	case "vertexcover":
		g := newGraph()
		w := make([]float64, g.N)
		wr := r.Split()
		for i := range w {
			w[i] = wr.UniformWeight(1, 10)
		}
		inst := setcover.FromVertexCover(g, w)
		res, err := core.RLRSetCover(inst, p, core.CoverOptions{VertexCoverMode: true})
		exitOn(err)
		cover := map[int]bool{}
		for _, v := range res.Cover {
			cover[v] = true
		}
		fmt.Printf("vertex cover: %d vertices, weight %.2f, valid=%v, ratio-vs-LB %.3f, iters=%d\n",
			len(res.Cover), res.Weight, graph.IsVertexCover(g, cover), res.Weight/res.LowerBound, res.Iterations)
		metrics = res.Metrics
	case "setcover-f":
		m := int(math.Pow(float64(*n), 1+*c))
		inst := setcover.RandomFrequency(*n, m, *f, 10, r.Split())
		res, err := core.RLRSetCover(inst, p, core.CoverOptions{})
		exitOn(err)
		fmt.Printf("set cover (f=%d): %d sets, weight %.2f, valid=%v, ratio-vs-LB %.3f, iters=%d\n",
			inst.MaxFrequency(), len(res.Cover), res.Weight, inst.IsCover(res.Cover),
			res.Weight/res.LowerBound, res.Iterations)
		metrics = res.Metrics
	case "setcover-greedy":
		m := *n / 10
		if m < 10 {
			m = 10
		}
		inst := setcover.RandomSized(*n, m, 12, 8, r.Split())
		res, err := core.HGSetCover(inst, p, core.HGCoverOptions{Eps: *eps})
		exitOn(err)
		fmt.Printf("set cover (hungry-greedy): %d sets, weight %.2f, valid=%v, iters=%d\n",
			len(res.Cover), res.Weight, inst.IsCover(res.Cover), res.Iterations)
		metrics = res.Metrics
	case "mis":
		g := newGraph()
		res, err := core.MISFast(g, p)
		exitOn(err)
		fmt.Printf("MIS (Algorithm 6): |I|=%d, valid=%v, iters=%d\n",
			len(res.Set), graph.IsMaximalIndependentSet(g, res.Set), res.Iterations)
		metrics = res.Metrics
	case "mis-simple":
		g := newGraph()
		res, err := core.MIS(g, p)
		exitOn(err)
		fmt.Printf("MIS (Algorithm 2): |I|=%d, valid=%v, iters=%d\n",
			len(res.Set), graph.IsMaximalIndependentSet(g, res.Set), res.Iterations)
		metrics = res.Metrics
	case "luby":
		g := newGraph()
		res, err := core.LubyMIS(g, p)
		exitOn(err)
		fmt.Printf("MIS (Luby): |I|=%d, valid=%v, iters=%d\n",
			len(res.Set), graph.IsMaximalIndependentSet(g, res.Set), res.Iterations)
		metrics = res.Metrics
	case "clique":
		g := newGraph()
		res, err := core.MaximalClique(g, p)
		exitOn(err)
		fmt.Printf("maximal clique: |K|=%d, valid=%v, iters=%d\n",
			len(res.Clique), graph.IsMaximalClique(g, res.Clique), res.Iterations)
		metrics = res.Metrics
	case "filtering":
		g := newGraph()
		res, err := core.FilteringMatching(g, p)
		exitOn(err)
		fmt.Printf("filtering maximal matching: %d edges, maximal=%v, iters=%d\n",
			len(res.Edges), graph.IsMaximalMatching(g, res.Edges), res.Iterations)
		metrics = res.Metrics
	case "vcolour":
		g := newGraph()
		res, err := core.VertexColouring(g, p)
		exitOn(err)
		fmt.Printf("vertex colouring: %d colours (∆=%d, κ=%d), proper=%v\n",
			res.NumColours, g.MaxDegree(), res.Groups, graph.IsProperVertexColouring(g, res.Colours))
		metrics = res.Metrics
	case "ecolour":
		g := newGraph()
		res, err := core.EdgeColouring(g, p)
		exitOn(err)
		fmt.Printf("edge colouring: %d colours (∆=%d, κ=%d), proper=%v\n",
			res.NumColours, g.MaxDegree(), res.Groups, graph.IsProperEdgeColouring(g, res.Colours))
		metrics = res.Metrics
	default:
		fmt.Fprintf(os.Stderr, "mrrun: unknown algorithm %q\n", *alg)
		os.Exit(2)
	}

	fmt.Printf("cluster: machines=%d rounds=%d words=%d messages=%d maxSpace=%d maxResident=%d violations=%d\n",
		metrics.Machines, metrics.Rounds, metrics.WordsSent, metrics.Messages,
		metrics.MaxSpace, metrics.MaxResident, metrics.Violations)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrrun:", err)
		os.Exit(1)
	}
}
