// Command mrrun runs a single MapReduce algorithm on a generated or loaded
// instance and prints the solution summary plus the measured model costs
// (rounds, words, space per machine). It dispatches through the algorithm
// registry of internal/core and builds instances through the same
// deterministic spec builder the mrserve daemon uses, so its output for a
// given (instance spec, algorithm, seed) is bit-identical to a served job.
//
// Usage:
//
//	mrrun -alg matching -n 1000 -c 0.3 -mu 0.2 [-seed 1] [-b 3] [-eps 0.2] [-workers W]
//	mrrun -alg list            # list registered algorithms
//	mrrun -load g.txt.gz ...   # run on a saved instance (format sniffed:
//	                           # text, binary container, gzip of either)
//	mrrun -load g.txt -convert g.mrg   # convert to a mappable binary
//	                           # container (streaming; no run) and exit
//	mrrun -n 100000 -c 0.3 -save g.mrg # generate straight to a container
//
// Loading a raw binary container (.mrg) memory-maps it: start-up is
// O(header) regardless of graph size and the kernel pages edge data in on
// demand. -convert streams text input through the external-sort builder, so
// converting never needs the graph in memory; its output is byte-identical
// to saving the in-heap graph.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/service"
	"repro/internal/setcover"
)

func main() {
	alg := flag.String("alg", "matching", "algorithm to run, or \"list\"")
	n := flag.Int("n", 1000, "number of vertices / sets")
	c := flag.Float64("c", 0.3, "density exponent: m = n^{1+c}")
	mu := flag.Float64("mu", 0.2, "space exponent: machines have ~n^{1+mu} words")
	seed := flag.Uint64("seed", 1, "random seed (instance generation and algorithm)")
	bcap := flag.Int("b", 2, "b-matching capacity")
	eps := flag.Float64("eps", 0.2, "epsilon (b-matching, greedy set cover)")
	f := flag.Int("f", 3, "set cover max frequency (setcover-f)")
	load := flag.String("load", "", "load the graph from a file (text, binary container, or gzip of either — sniffed) instead of generating one")
	save := flag.String("save", "", "save the generated graph before running (.mrg binary container, .mrgz compressed container, .gz gzip, else text)")
	convert := flag.String("convert", "", "with -load: stream-convert the input to a raw binary container at this path and exit without running")
	traceOut := flag.String("trace-out", "", "write a Chrome-trace-event/Perfetto JSON file of per-round phase timings (open in ui.perfetto.dev)")
	workers := flag.Int("workers", 0, "round-executor pool size: 0|1 sequential, >1 that many goroutines, -1 one per CPU")
	shards := flag.Int("shards", 0, "partition clusters across this many in-process shards (0|1 unsharded; results are bit-identical)")
	transport := flag.String("transport", "mem", "sharded transport: mem (in-memory) or tcp (loopback TCP mesh in-process)")
	barrierTimeout := flag.Duration("barrier-timeout", 2*time.Minute, "tcp transport: per-round barrier/receive deadline")
	dialTimeout := flag.Duration("dial-timeout", 10*time.Second, "tcp transport: per-attempt connect deadline")
	dialRetries := flag.Int("dial-retries", 3, "tcp transport: extra dial attempts after the first, with exponential backoff")
	flag.Parse()

	if *convert != "" {
		if *load == "" {
			exitOn(fmt.Errorf("-convert needs -load (the file to convert)"))
		}
		exitOn(graph.ConvertFile(*load, *convert, nil))
		fmt.Printf("converted %s -> %s\n", *load, *convert)
		return
	}

	if *alg == "list" {
		for _, a := range core.Algorithms() {
			params := ""
			for _, p := range a.Params {
				params += fmt.Sprintf(" -%s=%g", p.Name, p.Default)
			}
			fmt.Printf("%-16s%-14s %s\n", a.Name, params, a.Summary)
		}
		return
	}

	entry, ok := core.LookupAlgorithm(*alg)
	if !ok {
		fmt.Fprintf(os.Stderr, "mrrun: unknown algorithm %q (use -alg list)\n", *alg)
		os.Exit(2)
	}

	// Map the flags onto the instance spec the service layer also builds:
	// the algorithm's input kind picks the generator family, the shared
	// seed drives both generation and the algorithm.
	spec := service.InstanceSpec{Seed: *seed}
	switch entry.Input {
	case core.InputGraph:
		spec.Type = "density"
		spec.N, spec.C = *n, *c
	case core.InputVertexCover:
		spec.Type = "vertexcover"
		spec.N, spec.C = *n, *c
	case core.InputSetCover:
		if *alg == "setcover-greedy" {
			spec.Type = "setcover-greedy"
			spec.N = *n
		} else {
			spec.Type = "setcover-f"
			spec.N, spec.C, spec.F = *n, *c, *f
		}
	}

	var in core.Input
	if *load != "" {
		if entry.Input == core.InputSetCover {
			exitOn(fmt.Errorf("-load carries a graph; %q needs a set cover instance", *alg))
		}
		g, err := graph.ReadFile(*load)
		exitOn(err)
		in = core.Input{Graph: g}
		if entry.Input == core.InputVertexCover {
			// Derive the vertex weights a generated instance would carry:
			// deterministic in -seed, uniform in [1,10) as in the
			// "vertexcover" spec.
			wr := rng.New(*seed).Split()
			w := make([]float64, g.N)
			for i := range w {
				w[i] = wr.UniformWeight(1, 10)
			}
			in.Cover = setcover.FromVertexCover(g, w)
		}
	} else {
		var err error
		in, err = service.BuildInstance(spec)
		exitOn(err)
		if *save != "" && in.Graph != nil {
			exitOn(graph.WriteFile(*save, in.Graph))
		}
	}

	args := map[string]float64{}
	for _, p := range entry.Params {
		switch p.Name {
		case "b":
			args["b"] = float64(*bcap)
		case "eps":
			args["eps"] = *eps
		}
	}

	var factory mpc.TransportFactory
	switch *transport {
	case "", "mem":
		// nil selects the in-memory group.
	case "tcp":
		factory = mpc.TCPLoopback(mpc.TransportOpts{
			BarrierTimeout: *barrierTimeout,
			DialTimeout:    *dialTimeout,
			DialRetries:    *dialRetries,
		})
	default:
		exitOn(fmt.Errorf("-transport must be mem or tcp, got %q", *transport))
	}

	p := core.Params{Mu: *mu, Seed: *seed, Workers: *workers, Shards: *shards, Transport: factory}
	var sink *obs.ChromeTraceSink
	if *traceOut != "" {
		var err error
		sink, err = obs.NewChromeTraceFile(*traceOut)
		exitOn(err)
		p.Sink = sink
		p.TraceLabel = *alg
	}
	res, err := entry.Run(in, p, args)
	if sink != nil {
		// Close even on a failed run so the file is valid, loadable JSON up
		// to the last completed round.
		exitOn(sink.Close())
	}
	exitOn(err)
	fmt.Println(res.Summary)
	m := res.Metrics
	fmt.Printf("cluster: machines=%d rounds=%d words=%d messages=%d maxSpace=%d maxResident=%d violations=%d\n",
		m.Machines, m.Rounds, m.WordsSent, m.Messages,
		m.MaxSpace, m.MaxResident, m.Violations)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrrun:", err)
		os.Exit(1)
	}
}
