// Command mrverify is the offline ledger auditor: it re-reads a mrserve
// job ledger directory (read-only — safe to run against a live server),
// verifies every record checksum and Merkle chain link, then re-executes
// a sample of the ledgered jobs and proves each re-execution reproduces
// the chained result and metrics hashes bit-for-bit.
//
// Usage:
//
//	mrverify -ledger DIR [-data DIR] [-sample N] [-seed S] [-workers W] [-v]
//
// -ledger names the server's ledger directory. -data names the server's
// spool directory; it is required to replay jobs that ran on uploaded
// graphs (the ledger stores those by content id, the spool holds the
// bytes). -sample re-executes only N jobs, chosen deterministically from
// -seed (0 = all); chain verification always covers every record.
//
// Exit status is 0 only when the chain verifies end to end AND every
// replayed job reproduced its chained hashes. Chain damage (a corrupt
// record, a broken link) is reported with the file and offset pinpointed.
// Because jobs are deterministic — bit-identical results from the same
// (instance, alg, args, µ, seed) — a passing audit proves the stored
// results are exactly what running those jobs today produces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/service"
)

func main() {
	ledgerDir := flag.String("ledger", "", "ledger directory to audit (required)")
	dataDir := flag.String("data", "", "server spool directory, for replaying jobs on uploaded graphs")
	sample := flag.Int("sample", 0, "re-execute only this many ledgered jobs (0 = all)")
	seed := flag.Uint64("seed", 1, "sampling seed (deterministic pick when -sample > 0)")
	workers := flag.Int("workers", 1, "per-job round-executor pool size for re-execution: 0|1 sequential, >1 that many goroutines, -1 one per CPU")
	verbose := flag.Bool("v", false, "log every audited record")
	flag.Parse()

	logger := log.New(os.Stderr, "mrverify: ", 0)
	if *ledgerDir == "" {
		logger.Fatal("-ledger is required")
	}
	logf := logger.Printf
	if !*verbose {
		logf = func(string, ...any) {}
	}

	rep, err := service.AuditLedger(*ledgerDir, *dataDir, *sample, *seed, *workers, logf)
	out, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Printf("%s\n", out)
	if err != nil {
		logger.Fatalf("chain verification failed: %v", err)
	}
	if !rep.OK() {
		logger.Fatalf("audit failed: %d of %d replayed jobs did not reproduce their chained hashes",
			rep.Replayed-rep.Matched, rep.Replayed)
	}
	logger.Printf("audit ok: %d records, %d replayed, %d matched", rep.Records, rep.Replayed, rep.Matched)
}
