package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

// The fleet timeline: workers stream one "STATS {json}" line per executed
// round over the stdio protocol, the supervisor merges them with its own
// supervision events (respawns, resumes, graceful stops) into one
// exportable report (-fleet-report) and, optionally, a Perfetto timeline
// with one track per shard (-trace-out). All of it is wall-clock
// observability: the job's result document is byte-identical whether STATS
// are streamed or not.

// roundStats is the STATS line payload — an obs.RoundSpan flattened to
// JSON with microsecond durations. StartUS anchors the span on the shared
// machine clock (all workers are local processes), which is what lets the
// coordinator rebuild one coherent timeline from K independent streams.
type roundStats struct {
	Cluster  int64 `json:"cluster"`
	Round    int   `json:"round"`
	Active   int   `json:"active"`
	MaxLoad  int   `json:"max_load"`
	Words    int64 `json:"words"`
	Messages int   `json:"messages"`
	StartUS  int64 `json:"start_us"` // span start, unix microseconds

	WallUS    float64 `json:"wall_clock_us"`
	ComputeUS float64 `json:"compute_us"`
	MergeUS   float64 `json:"merge_us"`
	BarrierUS float64 `json:"barrier_us,omitempty"`
	ReplayUS  float64 `json:"replay_us,omitempty"`

	ShardWireWords []int64 `json:"shard_wire_words,omitempty"`
}

// usOf converts a duration to float microseconds.
func usOf(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// statsFromSpan flattens a span for the wire (ShardWords is copied: the
// producer reuses its backing array between rounds).
func statsFromSpan(s obs.RoundSpan) roundStats {
	st := roundStats{
		Cluster: s.Cluster, Round: s.Round, Active: s.Active,
		MaxLoad: s.MaxLoad, Words: s.Words, Messages: s.Messages,
		StartUS:   s.Start.UnixMicro(),
		WallUS:    usOf(s.Duration()),
		ComputeUS: usOf(s.Compute),
		MergeUS:   usOf(s.Merge),
		BarrierUS: usOf(s.Barrier),
		ReplayUS:  usOf(s.Replay),
	}
	if len(s.ShardWords) > 0 {
		st.ShardWireWords = append([]int64(nil), s.ShardWords...)
	}
	return st
}

// spanFromStats rebuilds a span in the coordinator. The track identity
// folds the shard index into the cluster id (a worker's local cluster
// numbering restarts at 1 in every process) and labels it with the shard,
// so the Perfetto export renders one named track per (shard, cluster).
func spanFromStats(st roundStats, shard int, alg string) obs.RoundSpan {
	start := time.UnixMicro(st.StartUS)
	dur := func(us float64) time.Duration { return time.Duration(us * 1e3) }
	return obs.RoundSpan{
		Label:    fmt.Sprintf("%s shard %d", alg, shard),
		Cluster:  int64(shard+1)<<20 | st.Cluster,
		Round:    st.Round,
		Active:   st.Active,
		MaxLoad:  st.MaxLoad,
		Words:    st.Words,
		Messages: st.Messages,
		Start:    start,
		End:      start.Add(dur(st.WallUS)),
		Compute:  dur(st.ComputeUS),
		Merge:    dur(st.MergeUS),
		Barrier:  dur(st.BarrierUS),
		Replay:   dur(st.ReplayUS),
	}
}

// statsSink streams spans as STATS lines on a worker's stdout.
type statsSink struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *statsSink) RoundDone(sp obs.RoundSpan) {
	b, err := json.Marshal(statsFromSpan(sp))
	if err != nil {
		return
	}
	s.mu.Lock()
	fmt.Fprintf(s.w, "STATS %s\n", b)
	s.mu.Unlock()
}

func (s *statsSink) Close() error { return nil }

// collectorSink accumulates spans in memory (the -shards 1 path, where
// there is no stdio protocol to stream through).
type collectorSink struct {
	mu    sync.Mutex
	stats []roundStats
}

func (c *collectorSink) RoundDone(sp obs.RoundSpan) {
	c.mu.Lock()
	c.stats = append(c.stats, statsFromSpan(sp))
	c.mu.Unlock()
}

func (c *collectorSink) Close() error { return nil }

// fleetEvent is one supervision event on the merged timeline.
type fleetEvent struct {
	TimeUS int64  `json:"time_us"` // unix microseconds, coordinator clock
	Shard  int    `json:"shard"`
	Event  string `json:"event"` // respawn, resume, stopped, result
	Detail string `json:"detail,omitempty"`
}

// fleetReport is the -fleet-report document.
type fleetReport struct {
	Alg      string         `json:"alg"`
	Shards   int            `json:"shards"`
	Respawns int            `json:"respawns,omitempty"`
	Events   []fleetEvent   `json:"events,omitempty"`
	Rounds   [][]roundStats `json:"rounds"` // indexed by shard
}

func (r fleetReport) write(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// writeFleetTrace exports the merged per-shard stats as a Chrome trace.
// The zero timestamp is the earliest span start so every ts is
// non-negative; shards are emitted in order, and each shard's stream is
// already time-ordered, which keeps per-track timestamps monotonic.
func writeFleetTrace(path, alg string, rounds [][]roundStats) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	zero := time.Now()
	for _, perShard := range rounds {
		for _, st := range perShard {
			if t := time.UnixMicro(st.StartUS); t.Before(zero) {
				zero = t
			}
		}
	}
	sink := obs.NewChromeTraceAt(f, zero)
	for shard, perShard := range rounds {
		for _, st := range perShard {
			sink.RoundDone(spanFromStats(st, shard, alg))
		}
	}
	return sink.Close()
}
