// Command mrshard runs one algorithm job across K cooperating OS
// processes connected by the length-prefixed TCP transport — the
// multi-process deployment of the sharded simulator, exercised end to end
// on one machine.
//
// Usage:
//
//	mrshard -job scripts/smoke_job.json -shards 3
//	mrshard -job job.json -shards 1     # in-process baseline, same output
//
// The job file is the same JSON document mrserve accepts on POST /v1/jobs
// ({"instance": {...}, "alg": "...", "seed": N, "mu": ..., "args": {...}}).
//
// Topology: the coordinator forks K workers of its own binary. Each worker
// opens a TCP listener on a loopback ephemeral port, reports the address
// on stdout ("ADDR host:port"), receives the full fleet address list on
// stdin ("PEERS a0 a1 ... a(K-1)"), and dials the mesh. Execution is
// replicated SPMD: every worker builds the same instance from the spec and
// runs all machines of every round deterministically, but owns only its
// contiguous shard of each cluster — cross-shard columns travel through
// the sockets, and all workers stay in lockstep on the shared seed. Each
// worker prints its full result ("RESULT {json}"); the coordinator
// requires all K results byte-identical and emits the single canonical
// result document on stdout. With -shards 1 the job runs unsharded in this
// process and prints the same document, so
//
//	mrshard -shards 1 ... > a.json; mrshard -shards 3 ... > b.json; cmp a.json b.json
//
// is the multi-process determinism check CI runs.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mpc"
	"repro/internal/service"
)

func main() {
	job := flag.String("job", "scripts/smoke_job.json", "job request file (mrserve POST /v1/jobs shape)")
	shards := flag.Int("shards", 2, "number of worker processes (1 = run unsharded in-process)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-round barrier timeout in the workers")
	worker := flag.Bool("worker", false, "internal: run as a shard worker (spawned by the coordinator)")
	shard := flag.Int("shard", 0, "internal: this worker's shard index")
	flag.Parse()

	if *shards < 1 || *shards > 256 {
		exitOn(fmt.Errorf("-shards must be in [1,256], got %d", *shards))
	}
	req, err := loadJob(*job)
	exitOn(err)

	if *worker {
		exitOn(runWorker(req, *shard, *shards, *timeout))
		return
	}
	if *shards == 1 {
		res, err := runJob(req, 0, nil)
		exitOn(err)
		exitOn(emit(res))
		return
	}
	exitOn(coordinate(*job, req, *shards, *timeout))
}

// loadJob reads and validates the job request document.
func loadJob(path string) (service.JobRequest, error) {
	var req service.JobRequest
	raw, err := os.ReadFile(path)
	if err != nil {
		return req, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("parse %s: %w", path, err)
	}
	if err := req.Instance.Validate(); err != nil {
		return req, err
	}
	if _, ok := core.LookupAlgorithm(req.Alg); !ok {
		return req, fmt.Errorf("unknown algorithm %q", req.Alg)
	}
	return req, nil
}

// runJob executes the job in this process: shards=0 runs unsharded, a
// non-nil transport factory runs this worker's shard of a shards-wide
// fleet. The result mirrors the mrserve payload for the same request.
func runJob(req service.JobRequest, shards int, transport mpc.TransportFactory) (*service.Result, error) {
	alg, _ := core.LookupAlgorithm(req.Alg)
	id, err := service.SpecID(req.Instance)
	if err != nil {
		return nil, err
	}
	in, err := service.BuildInstance(req.Instance)
	if err != nil {
		return nil, err
	}
	mu := 0.2 // mrserve's defaultMu
	if req.Mu != nil {
		mu = *req.Mu
	}
	args, err := alg.CanonArgs(req.Args)
	if err != nil {
		return nil, err
	}
	p := core.Params{Mu: mu, Seed: req.Seed, Shards: shards, Transport: transport}
	rr, err := alg.Run(in, p, args)
	if err != nil {
		return nil, err
	}
	return &service.Result{
		InstanceID: id, Alg: req.Alg, Args: args, Mu: mu, Seed: req.Seed,
		RunResult: *rr,
	}, nil
}

// emit writes the canonical result document to stdout.
func emit(res *service.Result) error {
	out, err := json.Marshal(res)
	if err != nil {
		return err
	}
	_, err = fmt.Printf("%s\n", out)
	return err
}

// runWorker is the child-process body: listen, handshake the mesh over
// stdio, run the job as one shard of the fleet, report the result.
func runWorker(req service.JobRequest, shard, shards int, timeout time.Duration) error {
	node, err := mpc.ListenTCP(shard, shards, "127.0.0.1:0", mpc.TCPOptions{BarrierTimeout: timeout})
	if err != nil {
		return err
	}
	defer node.Close()
	fmt.Printf("ADDR %s\n", node.Addr())

	sc := bufio.NewScanner(os.Stdin)
	if !sc.Scan() {
		return fmt.Errorf("shard %d: coordinator hung up before PEERS: %v", shard, sc.Err())
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != shards+1 || fields[0] != "PEERS" {
		return fmt.Errorf("shard %d: bad handshake line %q", shard, sc.Text())
	}
	if err := node.Connect(fields[1:]); err != nil {
		return err
	}

	res, err := runJob(req, shards, node.Factory())
	if err != nil {
		return fmt.Errorf("shard %d: %w", shard, err)
	}
	out, err := json.Marshal(res)
	if err != nil {
		return err
	}
	fmt.Printf("RESULT %s\n", out)
	return nil
}

// coordinate forks the worker fleet, brokers the address exchange, and
// checks that every worker reports the identical result.
func coordinate(jobPath string, req service.JobRequest, shards int, timeout time.Duration) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	type proc struct {
		cmd *exec.Cmd
		in  io.WriteCloser
		out *bufio.Scanner
	}
	procs := make([]proc, shards)
	defer func() {
		for _, p := range procs {
			if p.cmd != nil && p.cmd.Process != nil {
				p.cmd.Process.Kill()
				p.cmd.Wait()
			}
		}
	}()

	// readLine fetches the next "<TAG> payload" line from a worker.
	readLine := func(i int, tag string) (string, error) {
		for procs[i].out.Scan() {
			line := procs[i].out.Text()
			if rest, ok := strings.CutPrefix(line, tag+" "); ok {
				return rest, nil
			}
			fmt.Fprintf(os.Stderr, "mrshard: shard %d: %s\n", i, line)
		}
		if err := procs[i].out.Err(); err != nil {
			return "", fmt.Errorf("shard %d: %w", i, err)
		}
		return "", fmt.Errorf("shard %d exited before %s", i, tag)
	}

	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		cmd := exec.Command(self,
			"-worker", "-shard", fmt.Sprint(i), "-shards", fmt.Sprint(shards),
			"-job", jobPath, "-timeout", timeout.String())
		cmd.Stderr = os.Stderr
		in, err := cmd.StdinPipe()
		if err != nil {
			return err
		}
		out, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("start shard %d: %w", i, err)
		}
		procs[i] = proc{cmd: cmd, in: in, out: bufio.NewScanner(out)}
	}
	for i := range procs {
		addr, err := readLine(i, "ADDR")
		if err != nil {
			return err
		}
		addrs[i] = addr
	}
	peers := "PEERS " + strings.Join(addrs, " ") + "\n"
	for i := range procs {
		if _, err := io.WriteString(procs[i].in, peers); err != nil {
			return fmt.Errorf("shard %d: send peers: %w", i, err)
		}
	}

	results := make([]string, shards)
	for i := range procs {
		res, err := readLine(i, "RESULT")
		if err != nil {
			return err
		}
		results[i] = res
	}
	for i := range procs {
		procs[i].in.Close()
		if err := procs[i].cmd.Wait(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		procs[i].cmd = nil
	}

	// The determinism contract: every replica computed the job in full, so
	// every replica must hold the byte-identical result.
	for i := 1; i < shards; i++ {
		if results[i] != results[0] {
			return fmt.Errorf("results diverged across shards:\n  shard 0: %s\n  shard %d: %s",
				results[0], i, results[i])
		}
	}
	fmt.Fprintf(os.Stderr, "mrshard: %d workers agreed (%s)\n", shards, summarize(results[0]))
	fmt.Println(results[0])
	return nil
}

// summarize pulls the human line out of a result document for the log.
func summarize(res string) string {
	var doc map[string]any
	if err := json.Unmarshal([]byte(res), &doc); err != nil {
		return "unparseable result"
	}
	if s, ok := doc["summary"].(string); ok {
		return s
	}
	keys := make([]string, 0, len(doc))
	for k := range doc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrshard:", err)
		os.Exit(1)
	}
}
