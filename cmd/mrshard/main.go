// Command mrshard runs one algorithm job across K cooperating OS
// processes connected by the length-prefixed TCP transport — the
// multi-process deployment of the sharded simulator, exercised end to end
// on one machine — and supervises the fleet: a worker that dies mid-job is
// respawned and recovered through deterministic replay, and the final
// result is byte-identical to a failure-free run.
//
// Usage:
//
//	mrshard -job scripts/smoke_job.json -shards 3
//	mrshard -job job.json -shards 1     # in-process baseline, same output
//	mrshard -job job.json -shards 4 -chaos-drop-every 40 -chaos-seed 7
//
// The job file is the same JSON document mrserve accepts on POST /v1/jobs
// ({"instance": {...}, "alg": "...", "seed": N, "mu": ..., "args": {...}}).
//
// Topology: the coordinator forks K workers of its own binary. Each worker
// opens a TCP listener on a loopback ephemeral port, reports the address
// on stdout ("ADDR host:port"), receives the full fleet address list on
// stdin ("PEERS a0 a1 ... a(K-1)"), and dials the mesh. Execution is
// replicated SPMD: every worker builds the same instance from the spec and
// runs all machines of every round deterministically, but owns only its
// contiguous shard of each cluster — cross-shard columns travel through
// the sockets, and all workers stay in lockstep on the shared seed. Each
// worker prints its full result ("RESULT {json}"); the coordinator
// requires all K results byte-identical and emits the single canonical
// result document on stdout. With -shards 1 the job runs unsharded in this
// process and prints the same document, so
//
//	mrshard -shards 1 ... > a.json; mrshard -shards 3 ... > b.json; cmp a.json b.json
//
// is the multi-process determinism check CI runs.
//
// # Supervision and recovery
//
// With -max-respawns > 0 (the default) the coordinator is a supervisor and
// the fleet runs with recovery enabled (mpc.TransportOpts.Recover): every
// worker keeps a bounded wire log of its recent outbound rounds, survivors
// tolerate a dead peer instead of failing the round, and when the
// supervisor sees a worker exit before its RESULT it respawns the shard
// with a resume handshake (mpc.ReconnectTCP). The respawned worker redials
// the survivors, negotiates the resume round A = min over peers of the
// next round each still needs from it, replays its local rounds below A
// deterministically without touching the wire (replicated SPMD makes local
// state free), and is fed the survivors' logged column batches to catch
// up — so the fleet's final result is byte-identical to a run with no
// failure, which the coordinator still verifies across all K replicas.
// Serial failures of distinct shards are recoverable; respawned workers
// hold no listener, so a second death of the *same* recovered shard (or
// simultaneous deaths) exhausts the budget and the job fails (mrserve then
// degrades such jobs to unsharded execution).
//
// Workers take SIGTERM gracefully: the current round completes, writers
// flush their final EOR frames on close, and the worker exits 0 with
// "STOPPED" on stdout — the supervisor treats it like any other mid-job
// exit and respawns within budget.
//
// # Fault injection
//
// The -chaos-* flags wrap every worker's transport in mpc.ChaosSpec: a
// seeded, deterministic schedule of delays, duplicate frames, connection
// kills and torn writes. Faults are injected by the original workers only
// (a respawned worker runs clean so its replay machinery is exposed);
// recovery heals what chaos breaks, and the byte-identical check at the
// end proves it.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/exec"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/mpc"
	"repro/internal/obs"
	"repro/internal/service"
)

// cliConfig is every flag a worker needs forwarded from the coordinator.
type cliConfig struct {
	jobPath       string
	shards        int
	barrier       time.Duration
	dialTimeout   time.Duration
	dialRetries   int
	heartbeat     time.Duration
	peerDead      time.Duration
	wirelogRounds int
	maxRespawns   int

	chaosSeed      uint64
	chaosDelayEvry int
	chaosDelay     time.Duration
	chaosDupEvery  int
	chaosDropEvery int
	chaosTearEvery int

	// Fleet observability outputs (coordinator only; workers are told to
	// emit STATS lines when either is set).
	fleetReport string
	traceOut    string
}

// statsWanted reports whether workers should stream per-round STATS lines
// to the supervisor.
func (c cliConfig) statsWanted() bool { return c.fleetReport != "" || c.traceOut != "" }

// recovery reports whether the fleet runs with failure recovery enabled.
func (c cliConfig) recovery() bool { return c.maxRespawns > 0 }

// transportOpts maps the flags onto the mpc transport options.
func (c cliConfig) transportOpts() mpc.TransportOpts {
	return mpc.TransportOpts{
		BarrierTimeout:    c.barrier,
		DialTimeout:       c.dialTimeout,
		DialRetries:       c.dialRetries,
		HeartbeatInterval: c.heartbeat,
		PeerDeadAfter:     c.peerDead,
		Recover:           c.recovery(),
		WireLogRounds:     c.wirelogRounds,
	}
}

// chaos maps the flags onto a fault schedule (zero spec = no faults).
func (c cliConfig) chaos() mpc.ChaosSpec {
	return mpc.ChaosSpec{
		Seed:       c.chaosSeed,
		DelayEvery: c.chaosDelayEvry,
		Delay:      c.chaosDelay,
		DupEvery:   c.chaosDupEvery,
		DropEvery:  c.chaosDropEvery,
		TearEvery:  c.chaosTearEvery,
	}
}

// workerArgs renders the argv tail that reproduces this config in a child.
func (c cliConfig) workerArgs(shard int, reconnect bool) []string {
	args := []string{
		"-worker", "-shard", fmt.Sprint(shard), "-shards", fmt.Sprint(c.shards),
		"-job", c.jobPath, "-barrier-timeout", c.barrier.String(),
		"-dial-timeout", c.dialTimeout.String(), "-dial-retries", fmt.Sprint(c.dialRetries),
		"-heartbeat", c.heartbeat.String(), "-peer-dead", c.peerDead.String(),
		"-wirelog-rounds", fmt.Sprint(c.wirelogRounds),
		"-max-respawns", fmt.Sprint(c.maxRespawns),
	}
	if c.statsWanted() {
		// Respawned workers emit STATS too: their replayed rounds are
		// exactly what a fleet timeline should show.
		args = append(args, "-stats")
	}
	if reconnect {
		args = append(args, "-reconnect")
	} else {
		// Chaos is injected by original workers only: the respawned worker
		// must run clean so the engine sees the raw endpoint's replay
		// machinery, and re-injecting the same schedule would double faults.
		args = append(args,
			"-chaos-seed", fmt.Sprint(c.chaosSeed),
			"-chaos-delay-every", fmt.Sprint(c.chaosDelayEvry),
			"-chaos-delay", c.chaosDelay.String(),
			"-chaos-dup-every", fmt.Sprint(c.chaosDupEvery),
			"-chaos-drop-every", fmt.Sprint(c.chaosDropEvery),
			"-chaos-tear-every", fmt.Sprint(c.chaosTearEvery),
		)
	}
	return args
}

func main() {
	var cfg cliConfig
	flag.StringVar(&cfg.jobPath, "job", "scripts/smoke_job.json", "job request file (mrserve POST /v1/jobs shape)")
	flag.IntVar(&cfg.shards, "shards", 2, "number of worker processes (1 = run unsharded in-process)")
	flag.DurationVar(&cfg.barrier, "barrier-timeout", 2*time.Minute, "per-round barrier/receive deadline in the workers")
	flag.DurationVar(&cfg.dialTimeout, "dial-timeout", 10*time.Second, "per-attempt TCP connect deadline")
	flag.IntVar(&cfg.dialRetries, "dial-retries", 3, "extra dial attempts after the first, with exponential backoff")
	flag.DurationVar(&cfg.heartbeat, "heartbeat", time.Second, "heartbeat interval on idle connections (0 disables)")
	flag.DurationVar(&cfg.peerDead, "peer-dead", 0, "declare a silent peer dead after this long (0 = 3x heartbeat)")
	flag.IntVar(&cfg.wirelogRounds, "wirelog-rounds", 8, "recent rounds each worker retains for replay recovery")
	flag.IntVar(&cfg.maxRespawns, "max-respawns", 3, "worker respawns the supervisor will attempt per job (0 disables recovery)")
	flag.Uint64Var(&cfg.chaosSeed, "chaos-seed", 0, "chaos schedule seed (with any -chaos-*-every)")
	flag.IntVar(&cfg.chaosDelayEvry, "chaos-delay-every", 0, "delay every Nth transport op by -chaos-delay (0 disables)")
	flag.DurationVar(&cfg.chaosDelay, "chaos-delay", 5*time.Millisecond, "injected delay duration")
	flag.IntVar(&cfg.chaosDupEvery, "chaos-dup-every", 0, "duplicate every Nth batch frame (0 disables)")
	flag.IntVar(&cfg.chaosDropEvery, "chaos-drop-every", 0, "kill the connection on every Nth op (0 disables)")
	flag.IntVar(&cfg.chaosTearEvery, "chaos-tear-every", 0, "tear the connection mid-frame on every Nth op (0 disables)")
	flag.StringVar(&cfg.fleetReport, "fleet-report", "", "write the merged fleet timeline (per-shard round stats + supervision events) as JSON to this file")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "write a Chrome-trace-event/Perfetto JSON fleet timeline to this file (one track per shard; open in ui.perfetto.dev)")
	worker := flag.Bool("worker", false, "internal: run as a shard worker (spawned by the coordinator)")
	shard := flag.Int("shard", 0, "internal: this worker's shard index")
	reconnect := flag.Bool("reconnect", false, "internal: rejoin a running fleet after a crash (resume handshake)")
	stats := flag.Bool("stats", false, "internal: stream per-round STATS lines on stdout for the supervisor")
	flag.Parse()

	if cfg.shards < 1 || cfg.shards > 256 {
		exitOn(fmt.Errorf("-shards must be in [1,256], got %d", cfg.shards))
	}
	req, err := loadJob(cfg.jobPath)
	exitOn(err)

	if *worker {
		exitOn(runWorker(req, *shard, *reconnect, *stats, cfg))
		return
	}
	if cfg.shards == 1 {
		exitOn(runSingle(req, cfg))
		return
	}
	exitOn(coordinate(req, cfg))
}

// runSingle is the -shards 1 path: the job runs unsharded in this process,
// with the observability outputs attached directly instead of through the
// STATS protocol.
func runSingle(req service.JobRequest, cfg cliConfig) error {
	var sinks []obs.TraceSink
	var chrome *obs.ChromeTraceSink
	var collect *collectorSink
	if cfg.traceOut != "" {
		c, err := obs.NewChromeTraceFile(cfg.traceOut)
		if err != nil {
			return err
		}
		chrome = c
		sinks = append(sinks, chrome)
	}
	if cfg.fleetReport != "" {
		collect = &collectorSink{}
		sinks = append(sinks, collect)
	}
	res, err := runJob(req, 0, nil, nil, obs.MultiSink(sinks...), req.Alg)
	if chrome != nil {
		if cerr := chrome.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	if collect != nil {
		report := fleetReport{Alg: req.Alg, Shards: 1, Rounds: [][]roundStats{collect.stats}}
		if err := report.write(cfg.fleetReport); err != nil {
			return err
		}
	}
	return emit(res)
}

// loadJob reads and validates the job request document.
func loadJob(path string) (service.JobRequest, error) {
	var req service.JobRequest
	raw, err := os.ReadFile(path)
	if err != nil {
		return req, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("parse %s: %w", path, err)
	}
	if err := req.Instance.Validate(); err != nil {
		return req, err
	}
	if _, ok := core.LookupAlgorithm(req.Alg); !ok {
		return req, fmt.Errorf("unknown algorithm %q", req.Alg)
	}
	return req, nil
}

// runJob executes the job in this process: shards=0 runs unsharded, a
// non-nil transport factory runs this worker's shard of a shards-wide
// fleet. ctx, when non-nil, cancels between rounds (worker SIGTERM). A
// non-nil sink receives the wall-clock round spans (observability only —
// the result is bit-identical with or without it). The result mirrors the
// mrserve payload for the same request.
func runJob(req service.JobRequest, shards int, transport mpc.TransportFactory, ctx context.Context, sink obs.TraceSink, label string) (*service.Result, error) {
	alg, _ := core.LookupAlgorithm(req.Alg)
	id, err := service.SpecID(req.Instance)
	if err != nil {
		return nil, err
	}
	in, err := service.BuildInstance(req.Instance)
	if err != nil {
		return nil, err
	}
	mu := 0.2 // mrserve's defaultMu
	if req.Mu != nil {
		mu = *req.Mu
	}
	args, err := alg.CanonArgs(req.Args)
	if err != nil {
		return nil, err
	}
	p := core.Params{Mu: mu, Seed: req.Seed, Shards: shards, Transport: transport, Ctx: ctx}
	if sink != nil {
		p.Sink = sink
		p.TraceLabel = label
	}
	rr, err := alg.Run(in, p, args)
	if err != nil {
		return nil, err
	}
	return &service.Result{
		InstanceID: id, Alg: req.Alg, Args: args, Mu: mu, Seed: req.Seed,
		RunResult: *rr,
	}, nil
}

// emit writes the canonical result document to stdout.
func emit(res *service.Result) error {
	out, err := json.Marshal(res)
	if err != nil {
		return err
	}
	_, err = fmt.Printf("%s\n", out)
	return err
}

// readPeers consumes the coordinator's "PEERS a0 ... a(K-1)" stdin line.
func readPeers(shard, shards int) ([]string, error) {
	sc := bufio.NewScanner(os.Stdin)
	if !sc.Scan() {
		return nil, fmt.Errorf("shard %d: coordinator hung up before PEERS: %v", shard, sc.Err())
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != shards+1 || fields[0] != "PEERS" {
		return nil, fmt.Errorf("shard %d: bad handshake line %q", shard, sc.Text())
	}
	return fields[1:], nil
}

// runWorker is the child-process body: listen (or rejoin), handshake the
// mesh over stdio, run the job as one shard of the fleet, report the
// result. SIGTERM is graceful: the current round completes, the node
// close flushes the final EOR frames, and the worker exits 0.
func runWorker(req service.JobRequest, shard int, reconnect, stats bool, cfg cliConfig) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	opts := cfg.transportOpts()

	var node *mpc.TCPNode
	if reconnect {
		peers, err := readPeers(shard, cfg.shards)
		if err != nil {
			return err
		}
		n, resume, err := mpc.ReconnectTCP(shard, cfg.shards, peers, opts)
		if err != nil {
			return fmt.Errorf("shard %d: rejoin: %w", shard, err)
		}
		node = n
		fmt.Printf("RESUME %d\n", resume)
	} else {
		n, err := mpc.ListenTCP(shard, cfg.shards, "127.0.0.1:0", opts)
		if err != nil {
			return err
		}
		node = n
		fmt.Printf("ADDR %s\n", node.Addr())
		peers, err := readPeers(shard, cfg.shards)
		if err != nil {
			node.Close()
			return err
		}
		if err := node.Connect(peers); err != nil {
			node.Close()
			return err
		}
	}
	defer node.Close()

	factory := node.Factory()
	if !reconnect {
		// Respawned workers run clean: the chaos wrapper would hide the
		// endpoint's resume interface from the engine, and the original
		// schedule keeps running in the survivors anyway.
		factory = cfg.chaos().Wrap(factory)
	}
	var sink obs.TraceSink
	if stats {
		sink = &statsSink{w: os.Stdout}
	}
	res, err := runJob(req, cfg.shards, factory, ctx, sink, req.Alg)
	if err != nil {
		if ctx.Err() != nil && errors.Is(err, context.Canceled) {
			// Graceful SIGTERM: the round in progress completed before the
			// cancellation was observed; the deferred close flushes the
			// writers (final EORs included) and we exit 0.
			fmt.Println("STOPPED")
			return nil
		}
		return fmt.Errorf("shard %d: %w", shard, err)
	}
	out, err := json.Marshal(res)
	if err != nil {
		return err
	}
	fmt.Printf("RESULT %s\n", out)
	return nil
}

// workerEvent is one line of a worker's stdout (or its exit) delivered to
// the supervisor loop.
type workerEvent struct {
	shard int
	tag   string // ADDR, RESULT, RESUME, STOPPED, or "eof"
	text  string
}

// workerTags are the stdout protocol lines; everything else is relayed to
// the supervisor's stderr as worker log output.
var workerTags = []string{"ADDR", "RESULT", "RESUME", "STOPPED", "STATS"}

// watchWorker relays one worker's tagged stdout lines into events and
// reports stream end (= process exit) as an "eof" event.
func watchWorker(shard int, out io.Reader, events chan<- workerEvent) {
	sc := bufio.NewScanner(out)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20) // result documents can be large
	for sc.Scan() {
		line := sc.Text()
		tagged := false
		for _, tag := range workerTags {
			if rest, ok := strings.CutPrefix(line, tag+" "); ok {
				events <- workerEvent{shard: shard, tag: tag, text: rest}
				tagged = true
				break
			}
			if line == tag {
				events <- workerEvent{shard: shard, tag: tag}
				tagged = true
				break
			}
		}
		if !tagged {
			fmt.Fprintf(os.Stderr, "mrshard: shard %d: %s\n", shard, line)
		}
	}
	events <- workerEvent{shard: shard, tag: "eof"}
}

// coordinate forks the worker fleet, brokers the address exchange,
// supervises the workers — respawning any that die before reporting,
// within the -max-respawns budget — and checks that every shard reports
// the identical result.
func coordinate(req service.JobRequest, cfg cliConfig) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	type proc struct {
		cmd *exec.Cmd
		in  io.WriteCloser
	}
	shards := cfg.shards
	procs := make([]proc, shards)
	events := make(chan workerEvent, shards*4)
	defer func() {
		for _, p := range procs {
			if p.cmd != nil && p.cmd.Process != nil {
				p.cmd.Process.Kill()
				p.cmd.Wait()
			}
		}
	}()

	spawn := func(i int, reconnect bool) error {
		cmd := exec.Command(self, cfg.workerArgs(i, reconnect)...)
		cmd.Stderr = os.Stderr
		in, err := cmd.StdinPipe()
		if err != nil {
			return err
		}
		out, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("start shard %d: %w", i, err)
		}
		procs[i] = proc{cmd: cmd, in: in}
		go watchWorker(i, out, events)
		return nil
	}
	// reap waits for shard i's dead process and clears its slot.
	reap := func(i int) error {
		err := procs[i].cmd.Wait()
		procs[i] = proc{}
		return err
	}

	for i := 0; i < shards; i++ {
		if err := spawn(i, false); err != nil {
			return err
		}
	}

	// Address exchange: a worker dying before ADDR is a startup failure,
	// not something replay can recover.
	addrs := make([]string, shards)
	for got := 0; got < shards; {
		ev := <-events
		switch ev.tag {
		case "ADDR":
			if addrs[ev.shard] == "" {
				got++
			}
			addrs[ev.shard] = ev.text
		case "eof":
			err := reap(ev.shard)
			return fmt.Errorf("shard %d exited before ADDR: %v", ev.shard, err)
		}
	}
	peers := "PEERS " + strings.Join(addrs, " ") + "\n"
	for i := range procs {
		if _, err := io.WriteString(procs[i].in, peers); err != nil {
			return fmt.Errorf("shard %d: send peers: %w", i, err)
		}
	}

	// Supervision loop: collect RESULTs; a worker exiting without one is
	// respawned with the resume handshake while the survivors hold the
	// round open, until the budget runs out. STATS lines and supervision
	// events accumulate into the fleet timeline.
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	results := make([]string, shards)
	respawns := make([]int, shards)
	stats := make([][]roundStats, shards)
	var timeline []fleetEvent
	record := func(shard int, event, detail string) {
		timeline = append(timeline, fleetEvent{
			TimeUS: time.Now().UnixMicro(), Shard: shard, Event: event, Detail: detail,
		})
	}
	done, exited := 0, 0
	for done < shards || exited < shards {
		ev := <-events
		switch ev.tag {
		case "RESULT":
			if results[ev.shard] == "" {
				done++
			}
			results[ev.shard] = ev.text
			record(ev.shard, "result", "")
		case "STATS":
			var st roundStats
			if err := json.Unmarshal([]byte(ev.text), &st); err == nil {
				stats[ev.shard] = append(stats[ev.shard], st)
			}
		case "RESUME":
			logger.Info("shard rejoined, resuming", "shard", ev.shard, "wire_round", ev.text)
			record(ev.shard, "resume", "wire round "+ev.text)
		case "STOPPED":
			logger.Info("shard stopped gracefully (SIGTERM)", "shard", ev.shard)
			record(ev.shard, "stopped", "")
		case "eof":
			err := reap(ev.shard)
			if results[ev.shard] != "" {
				// Normal completion; a nonzero exit after a result still
				// fails the job (the worker saw something we should not
				// paper over).
				if err != nil {
					return fmt.Errorf("shard %d: %w", ev.shard, err)
				}
				exited++
				continue
			}
			respawns[ev.shard]++
			if !cfg.recovery() || respawns[ev.shard] > cfg.maxRespawns {
				return fmt.Errorf("shard %d died before reporting (%v) with respawn budget exhausted (%d/%d)",
					ev.shard, err, respawns[ev.shard]-1, cfg.maxRespawns)
			}
			logger.Warn("shard died; respawning", "shard", ev.shard, "cause", fmt.Sprint(err),
				"attempt", respawns[ev.shard], "budget", cfg.maxRespawns)
			record(ev.shard, "respawn", fmt.Sprintf("attempt %d/%d", respawns[ev.shard], cfg.maxRespawns))
			mpc.AddWorkerRespawns(1)
			if err := spawn(ev.shard, true); err != nil {
				return err
			}
			if _, err := io.WriteString(procs[ev.shard].in, peers); err != nil {
				return fmt.Errorf("shard %d: send peers after respawn: %w", ev.shard, err)
			}
		}
	}

	// The determinism contract: every replica computed the job in full —
	// respawned or not — so every replica must hold the byte-identical
	// result.
	for i := 1; i < shards; i++ {
		if results[i] != results[0] {
			return fmt.Errorf("results diverged across shards:\n  shard 0: %s\n  shard %d: %s",
				results[0], i, results[i])
		}
	}
	total := 0
	for _, r := range respawns {
		total += r
	}
	logger.Info("workers agreed", "shards", shards, "respawns", total, "summary", summarize(results[0]))
	if cfg.fleetReport != "" {
		report := fleetReport{Alg: req.Alg, Shards: shards, Respawns: total,
			Events: timeline, Rounds: stats}
		if err := report.write(cfg.fleetReport); err != nil {
			return fmt.Errorf("fleet report: %w", err)
		}
		logger.Info("fleet report written", "path", cfg.fleetReport)
	}
	if cfg.traceOut != "" {
		if err := writeFleetTrace(cfg.traceOut, req.Alg, stats); err != nil {
			return fmt.Errorf("fleet trace: %w", err)
		}
		logger.Info("fleet trace written", "path", cfg.traceOut)
	}
	fmt.Println(results[0])
	return nil
}

// summarize pulls the human line out of a result document for the log.
func summarize(res string) string {
	var doc map[string]any
	if err := json.Unmarshal([]byte(res), &doc); err != nil {
		return "unparseable result"
	}
	if s, ok := doc["summary"].(string); ok {
		return s
	}
	keys := make([]string, 0, len(doc))
	for k := range doc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrshard:", err)
		os.Exit(1)
	}
}
