// Command mrbench runs the Figure 1 reproduction experiments and the
// ablations, and renders their result tables as markdown (the contents of
// EXPERIMENTS.md) or as machine-readable JSON.
//
// Usage:
//
//	mrbench [-quick] [-seed N] [-workers W] [-run F1.Match,F1.VC] [-list] [-json]
//	        [-cpuprofile FILE] [-memprofile FILE]
//
// With no -run flag, all experiments run in registry order. -quick shrinks
// the parameter sweeps (used by CI); the recorded EXPERIMENTS.md numbers
// come from a full run. -workers sets the simulator's round-executor pool
// (-1 = one per CPU); it changes wall-clock only, never results. -json
// replaces the markdown with one JSON document carrying every experiment's
// measurements plus wall-clock, the active worker count, and the
// experiment's mean/max active machines per simulator round (the measured
// per-round work under sparse scheduling), so performance trajectories can
// be tracked across commits (e.g. `mrbench -quick -json >
// BENCH_quick.json`). Each experiment additionally carries a
// round_phase_wall_clock_us object — the mean per-round compute/merge/
// barrier phase times measured by a trace sink attached to every algorithm
// run (timing only; the CI trajectory check strips wall_clock keys). The
// per-experiment text footer reports the same activity and phase numbers.
//
// -cpuprofile and -memprofile write pprof profiles covering the selected
// experiments (the heap profile is taken after a final GC), so performance
// PRs can attach `go tool pprof` evidence from exactly the workloads the
// tables report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

// jsonExperiment is the machine-readable form of one experiment run.
// ActiveMeanPerRound/ActiveMaxPerRound aggregate the simulator's sparse
// scheduling activity (machines actually run per round) across the
// experiment's algorithm runs; like the result cells they are deterministic
// given the seed, so the CI trajectory check covers them.
type jsonExperiment struct {
	ID                 string  `json:"id"`
	Title              string  `json:"title"`
	PaperClaim         string  `json:"paper_claim,omitempty"`
	WallClockMS        float64 `json:"wall_clock_ms"`
	ActiveMeanPerRound float64 `json:"active_mean_per_round"`
	ActiveMaxPerRound  int     `json:"active_max_per_round"`
	// RoundPhase breaks the experiment's wall-clock down into mean
	// per-round phase times (compute/merge/barrier/replay µs) across every
	// algorithm run, measured by a trace sink on the simulator. Like
	// wall_clock_ms it is timing, not model output; the CI trajectory check
	// strips every key containing "wall_clock" before diffing.
	RoundPhase *obs.PhaseMeans `json:"round_phase_wall_clock_us,omitempty"`
	Columns    []string        `json:"columns"`
	Rows       []jsonRow       `json:"rows"`
	Notes      []string        `json:"notes,omitempty"`
}

type jsonRow struct {
	Config string            `json:"config"`
	Cells  map[string]string `json:"cells"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Seed             uint64           `json:"seed"`
	Quick            bool             `json:"quick"`
	Workers          int              `json:"workers"`
	Shards           int              `json:"shards,omitempty"`
	GoMaxProcs       int              `json:"gomaxprocs"`
	TotalWallClockMS float64          `json:"total_wall_clock_ms"`
	Experiments      []jsonExperiment `json:"experiments"`
}

func main() {
	os.Exit(realMain())
}

// realMain carries the program body so that deferred cleanup — stopping the
// CPU profile and writing the heap profile — runs on every exit path,
// including experiment failures. os.Exit in main would skip the defers and
// leave a truncated -cpuprofile exactly when profiling a failing run.
func realMain() int {
	quick := flag.Bool("quick", false, "run reduced parameter sweeps")
	seed := flag.Uint64("seed", 20180617, "root random seed (default: the paper's arXiv date)")
	workers := flag.Int("workers", -1, "round-executor pool size: 0|1 sequential, >1 that many goroutines, -1 one per CPU")
	shards := flag.Int("shards", 0, "partition every cluster across this many in-process shards over the in-memory transport (0|1 unsharded; results are bit-identical)")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	asJSON := flag.Bool("json", false, "emit one machine-readable JSON document instead of markdown")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU pprof profile of the experiment runs to this file")
	memProfile := flag.String("memprofile", "", "write a heap pprof profile (after a final GC) to this file")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return 0
	}

	var selected []bench.Experiment
	if *run == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "mrbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	activeWorkers := *workers
	if activeWorkers < 0 {
		activeWorkers = runtime.NumCPU()
	}
	if activeWorkers == 0 {
		activeWorkers = 1
	}
	if *cpuProfile != "" {
		fh, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: cpuprofile: %v\n", err)
			return 1
		}
		defer fh.Close()
		if err := pprof.StartCPUProfile(fh); err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			fh, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mrbench: memprofile: %v\n", err)
				return
			}
			defer fh.Close()
			runtime.GC() // settle allocations so the heap profile is steady-state
			if err := pprof.WriteHeapProfile(fh); err != nil {
				fmt.Fprintf(os.Stderr, "mrbench: memprofile: %v\n", err)
			}
		}()
	}
	if !*asJSON {
		fmt.Printf("# Experiment results (seed=%d, quick=%v, workers=%d)\n\n", *seed, *quick, activeWorkers)
	}
	report := jsonReport{
		Seed:       *seed,
		Quick:      *quick,
		Workers:    activeWorkers,
		Shards:     *shards,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	total := time.Now()
	for _, e := range selected {
		// Per-experiment header line: id, wall-clock, and the active worker
		// count, so recorded trajectories can attribute speedups.
		start := time.Now()
		acc := &obs.PhaseAccumulator{}
		tab, err := e.Run(bench.RunConfig{Seed: *seed, Quick: *quick, Workers: *workers, Shards: *shards, Sink: acc})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: %s failed: %v\n", e.ID, err)
			return 1
		}
		elapsed := time.Since(start)
		phases := acc.Means()
		if *asJSON {
			je := jsonExperiment{
				ID:                 tab.ID,
				Title:              tab.Title,
				PaperClaim:         tab.PaperClaim,
				WallClockMS:        float64(elapsed.Microseconds()) / 1000,
				ActiveMeanPerRound: tab.ActiveMeanPerRound(),
				ActiveMaxPerRound:  tab.ActiveMaxPerRound(),
				Columns:            tab.Columns,
				Notes:              tab.Notes,
			}
			if phases.Rounds > 0 {
				je.RoundPhase = &phases
			}
			for _, row := range tab.Rows {
				je.Rows = append(je.Rows, jsonRow{Config: row.Config, Cells: row.Cells})
			}
			report.Experiments = append(report.Experiments, je)
			continue
		}
		if err := tab.WriteMarkdown(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: write: %v\n", err)
			return 1
		}
		fmt.Printf("_%s completed in %v (workers=%d, active machines/round: mean %.1f, max %d; mean µs/round: compute %.1f, merge %.1f, barrier %.1f)._\n\n",
			e.ID, elapsed.Round(time.Millisecond), activeWorkers,
			tab.ActiveMeanPerRound(), tab.ActiveMaxPerRound(),
			phases.ComputeUS, phases.MergeUS, phases.BarrierUS)
	}
	if *asJSON {
		report.TotalWallClockMS = float64(time.Since(total).Microseconds()) / 1000
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: json: %v\n", err)
			return 1
		}
		return 0
	}
	fmt.Printf("_total wall-clock %v across %d experiments (workers=%d)._\n",
		time.Since(total).Round(time.Millisecond), len(selected), activeWorkers)
	return 0
}
