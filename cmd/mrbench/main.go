// Command mrbench runs the Figure 1 reproduction experiments and the
// ablations, and renders their result tables as markdown (the contents of
// EXPERIMENTS.md).
//
// Usage:
//
//	mrbench [-quick] [-seed N] [-workers W] [-run F1.Match,F1.VC] [-list]
//
// With no -run flag, all experiments run in registry order. -quick shrinks
// the parameter sweeps (used by CI); the recorded EXPERIMENTS.md numbers
// come from a full run. -workers sets the simulator's round-executor pool
// (-1 = one per CPU); it changes wall-clock only, never results.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced parameter sweeps")
	seed := flag.Uint64("seed", 20180617, "root random seed (default: the paper's arXiv date)")
	workers := flag.Int("workers", -1, "round-executor pool size: 0|1 sequential, >1 that many goroutines, -1 one per CPU")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []bench.Experiment
	if *run == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "mrbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	activeWorkers := *workers
	if activeWorkers < 0 {
		activeWorkers = runtime.NumCPU()
	}
	if activeWorkers == 0 {
		activeWorkers = 1
	}
	fmt.Printf("# Experiment results (seed=%d, quick=%v, workers=%d)\n\n", *seed, *quick, activeWorkers)
	total := time.Now()
	for _, e := range selected {
		// Per-experiment header line: id, wall-clock, and the active worker
		// count, so recorded trajectories can attribute speedups.
		start := time.Now()
		tab, err := e.Run(bench.RunConfig{Seed: *seed, Quick: *quick, Workers: *workers})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		if err := tab.WriteMarkdown(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: write: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("_%s completed in %v (workers=%d)._\n\n",
			e.ID, time.Since(start).Round(time.Millisecond), activeWorkers)
	}
	fmt.Printf("_total wall-clock %v across %d experiments (workers=%d)._\n",
		time.Since(total).Round(time.Millisecond), len(selected), activeWorkers)
}
